#include "kv/table.h"

#include <algorithm>
#include <cassert>

namespace kml::kv {

Table::Table(sim::StorageStack& stack, const TableGeometry& geom,
             std::uint64_t entries)
    : geom_(geom) {
  inode_ = stack.files().create(geom.pages_for(entries)).inode;
}

void Table::read_block_for(sim::StorageStack& stack,
                           std::uint64_t idx) const {
  const std::uint64_t block = idx / geom_.entries_per_block();
  const std::uint64_t first_page = block * geom_.block_pages;
  stack.cache().read(stack.files().get(inode_), first_page,
                     geom_.block_pages);
}

DenseRun::DenseRun(sim::StorageStack& stack, const TableGeometry& geom,
                   std::uint64_t num_keys)
    : Table(stack, geom, num_keys), num_keys_(num_keys) {}

std::optional<std::uint64_t> DenseRun::find(std::uint64_t key) const {
  if (key >= num_keys_) return std::nullopt;
  return key;
}

SortedRun::SortedRun(sim::StorageStack& stack, const TableGeometry& geom,
                     std::vector<std::uint64_t> keys,
                     std::uint32_t bloom_bits_per_key, bool charge_flush)
    : Table(stack, geom, keys.size()),
      keys_(std::move(keys)),
      bloom_(keys_.empty() ? 1 : keys_.size(), bloom_bits_per_key) {
  assert(std::is_sorted(keys_.begin(), keys_.end()));
  for (std::uint64_t k : keys_) bloom_.add(k);

  if (!charge_flush) return;  // recovery: the run is already on "disk"

  // Charge the flush: dirty the run's pages through the cache (fires
  // writeback_dirty_page), then fsync them — sync_file batches the dirty
  // range into contiguous device commands.
  sim::FileHandle& file = stack.files().get(inode_);
  stack.cache().write(file, 0, file.size_pages);
  stack.cache().sync_file(inode_);
}

std::optional<std::uint64_t> SortedRun::find(std::uint64_t key) const {
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return std::nullopt;
  return static_cast<std::uint64_t>(it - keys_.begin());
}

bool SortedRun::may_contain(std::uint64_t key) const {
  if (keys_.empty()) return false;
  if (key < keys_.front() || key > keys_.back()) return false;
  return bloom_.may_contain(key);
}

std::uint64_t SortedRun::lower_bound(std::uint64_t key) const {
  return static_cast<std::uint64_t>(
      std::lower_bound(keys_.begin(), keys_.end(), key) - keys_.begin());
}

}  // namespace kml::kv
