#include "kv/minikv.h"

#include "kv/iterator.h"
#include "observe/flight_recorder.h"
#include "observe/metrics.h"
#include "portability/epoch.h"
#include "portability/file.h"
#include "portability/log.h"

#include <algorithm>

namespace kml::kv {

void MiniKV::delete_live_state(void* p) {
  delete static_cast<LiveState*>(p);
}

MiniKV::MiniKV(sim::StorageStack& stack, const KVConfig& config)
    : stack_(&stack), config_(config) {
  auto state = new LiveState;
  state->mem = make_memtable();
  state->runs.push_back(
      std::make_shared<DenseRun>(stack, config_.geom, config_.num_keys));
  live_.store(state, std::memory_order_release);
  init_sim_wal();

  if (!config_.durable_dir.empty()) {
    durable_ = true;
    // Seed the directory: an empty WAL and a manifest naming it, so a
    // crash one microsecond from now already recovers to a valid (empty-
    // overlay) store.
    if (!wal_.open(wal_path(config_.durable_dir, wal_file_id_),
                   /*truncate=*/true)) {
      durability_fault(FaultSite::kWalAppend);
      return;
    }
    (void)write_manifest();
  }
}

MiniKV::MiniKV(sim::StorageStack& stack, const KVConfig& config,
               const ManifestData& m)
    : stack_(&stack), config_(config) {
  durable_ = true;
  config_.num_keys = m.num_base_keys;
  next_seq_ = m.next_seq;
  next_file_id_ = m.next_file_id;
  checkpoint_id_ = m.checkpoint_id;
  wal_file_id_ = m.wal_file_id;
  wal_start_seq_ = m.wal_start_seq;
  run_refs_ = m.runs;

  auto state = new LiveState;
  state->mem = make_memtable();
  state->runs.push_back(
      std::make_shared<DenseRun>(stack, config_.geom, m.num_base_keys));

  // Overlay runs, oldest first, from their durable files. A manifest never
  // references bytes that were not fully written (run file before manifest,
  // always), so a failed load here means corruption outside our own fault
  // model — refuse to open rather than serve wrong answers.
  for (const RunRef& ref : run_refs_) {
    std::vector<std::uint64_t> keys;
    if (!load_run_file(config_.durable_dir, ref.file_id, ref.entry_count,
                       &keys)) {
      KML_ERROR("minikv: run file %llu unreadable during recovery",
                static_cast<unsigned long long>(ref.file_id));
      failed_ = true;
      live_.store(state, std::memory_order_release);
      return;
    }
    state->runs.push_back(std::make_shared<SortedRun>(
        stack, config_.geom, std::move(keys), config_.bloom_bits_per_key,
        /*charge_flush=*/false));
  }

  // Replay the WAL tail into the fresh memtable: exactly the acknowledged
  // writes newer than the last flush. A torn tail (the un-acked group a
  // crash cut short) fails its frame CRC and is dropped whole.
  const WalReplayResult replay = wal_replay(
      wal_path(config_.durable_dir, wal_file_id_), wal_start_seq_,
      [&state](std::uint64_t key, std::uint64_t seq) {
        state->mem->put(key, seq);
      });
  if (replay.opened) {
    ++stats_.wal_replays;
    stats_.wal_records_replayed += replay.records;
    KML_COUNTER_INC(observe::kMetricKvWalReplays);
    KML_COUNTER_ADD(observe::kMetricKvWalRecordsReplayed, replay.records);
  }
  if (replay.last_seq + 1 > next_seq_) next_seq_ = replay.last_seq + 1;
  wal_tail_seq_ = durable_seq_ = next_seq_ - 1;

  live_.store(state, std::memory_order_release);
  init_sim_wal();

  // Leave the store on a clean log: flush what the replay rebuilt, then
  // rotate onto a fresh WAL + manifest. After this, a second recovery of
  // the same directory needs no replay at all — and any torn tail from the
  // crash is physically gone instead of lurking mid-file.
  flush_memtable();
  if (failed_ || !rotate_wal()) {
    failed_ = true;
    return;
  }

  ++stats_.recoveries;
  KML_COUNTER_INC(observe::kMetricKvRecoveries);
  KML_EVENT(observe::EventId::kKvRecover, replay.records, durable_seq_);
  KML_INFO("minikv: recovered %llu runs, %llu WAL records, durable_seq=%llu",
           static_cast<unsigned long long>(run_refs_.size()),
           static_cast<unsigned long long>(replay.records),
           static_cast<unsigned long long>(durable_seq_));
}

std::unique_ptr<MiniKV> MiniKV::recover(sim::StorageStack& stack,
                                        const KVConfig& config) {
  ManifestData m;
  switch (load_manifest(config.durable_dir, &m)) {
    case ManifestLoad::kMissing:
      KML_WARN("minikv: no manifest in %s", config.durable_dir.c_str());
      return nullptr;
    case ManifestLoad::kTorn: {
      // The torn-manifest gate: a half-written MANIFEST (only possible if
      // the atomic-rename discipline was violated or the disk lied) is
      // rejected outright — never half-loaded.
      const std::int64_t bytes =
          kml_fsize(manifest_path(config.durable_dir).c_str());
      KML_COUNTER_INC(observe::kMetricKvTornManifests);
      KML_EVENT(observe::EventId::kKvTornManifest,
                bytes < 0 ? 0 : static_cast<std::uint64_t>(bytes));
      KML_ERROR("minikv: torn manifest in %s rejected (%lld bytes)",
                config.durable_dir.c_str(), static_cast<long long>(bytes));
      return nullptr;
    }
    case ManifestLoad::kOk:
      break;
  }
  auto db = std::unique_ptr<MiniKV>(new MiniKV(stack, config, m));
  if (db->failed_) return nullptr;
  return db;
}

MiniKV::~MiniKV() {
  if (durable_ && !failed_) {
    // Clean shutdown: group-commit the tail so nothing acked-in-memory is
    // lost. (A store being torn down mid-fault skips this — that is the
    // crash the harness recovers from.)
    (void)commit_wal();
  }
  wal_.close();
  delete live_.load(std::memory_order_relaxed);
  // Sweep any LiveStates still parked in the epoch domain (readers are
  // gone by contract when the owner destructs).
  kml_epoch_reclaim();
}

void MiniKV::init_sim_wal() {
  // WAL: a modest circular file (virtual-time plane).
  wal_inode_ = stack_->files().create(/*size_pages=*/4096).inode;
}

std::shared_ptr<Memtable> MiniKV::make_memtable() const {
  const std::uint64_t hint =
      config_.memtable_limit_bytes / config_.geom.entry_bytes;
  return std::make_shared<Memtable>(config_.geom.entry_bytes, hint);
}

void MiniKV::publish(LiveState* next) {
  LiveState* old = live_.exchange(next, std::memory_order_acq_rel);
  kml_epoch_retire(old, &delete_live_state);
  ++stats_.epoch_deferred_frees;
  KML_COUNTER_INC(observe::kMetricKvEpochDeferredFrees);
  kml_epoch_reclaim();
}

bool MiniKV::get(std::uint64_t key) {
  stack_->charge_cpu_ns(config_.cpu_get_ns);
  ++stats_.gets;
  LiveState* s = live();

  if (s->mem->contains(key)) {
    ++stats_.memtable_hits;
    ++stats_.get_hits;
    return true;
  }

  // Newest overlay first, base run last.
  for (auto it = s->runs.rbegin(); it != s->runs.rend(); ++it) {
    Table& run = **it;
    if (!run.may_contain(key)) continue;
    const auto idx = run.find(key);
    if (idx.has_value()) {
      run.read_block_for(*stack_, *idx);
      ++stats_.get_hits;
      return true;
    }
    // Bloom false positive: the store still pays an index/data block probe
    // before discovering the key is absent.
    ++stats_.bloom_false_positives;
    const std::uint64_t probe =
        std::min(run.lower_bound(key),
                 run.entry_count() == 0 ? 0 : run.entry_count() - 1);
    run.read_block_for(*stack_, probe);
  }
  return false;
}

bool MiniKV::get_concurrent(std::uint64_t key) {
  // Pin an epoch, then load the snapshot: the publish order (store state,
  // then retire old) plus the pin guarantees everything reachable from `s`
  // outlives this scope. Pure index walk — no sim calls, no plain-field
  // stats, no blocking.
  EpochGuard guard;
  const LiveState* s = live_.load(std::memory_order_acquire);
  concurrent_gets_.fetch_add(1, std::memory_order_relaxed);

  bool hit = s->mem->contains(key);
  if (!hit) {
    for (auto it = s->runs.rbegin(); it != s->runs.rend(); ++it) {
      const Table& run = **it;
      if (!run.may_contain(key)) continue;
      if (run.find(key).has_value()) {
        hit = true;
        break;
      }
    }
  }
  if (hit) concurrent_hits_.fetch_add(1, std::memory_order_relaxed);
  return hit;
}

void MiniKV::put(std::uint64_t key) {
  if (failed_) return;  // crashed store: writes are refused, never acked
  stack_->charge_cpu_ns(config_.cpu_put_ns);
  ++stats_.puts;
  const std::uint64_t seq = next_seq_++;
  wal_buffer_append(key, seq);
  if (failed_) return;  // group commit tore at the buffer boundary
  live()->mem->put(key, seq);
  ++generation_;
  maybe_flush();
}

std::unique_ptr<Iterator> MiniKV::new_iterator() {
  return std::make_unique<Iterator>(*this);
}

void MiniKV::wal_buffer_append(std::uint64_t key, std::uint64_t seq) {
  if (durable_) wal_.append(key, seq);
  wal_tail_seq_ = seq;
  wal_fill_bytes_ += config_.geom.entry_bytes;
  if (wal_fill_bytes_ >= config_.wal_buffer_bytes) (void)commit_wal();
}

bool MiniKV::commit_wal() {
  // Virtual-time plane: dirty the WAL pages through the cache (writeback
  // tracepoints fire), then fsync — the group commit the sim charges.
  if (wal_fill_bytes_ > 0) {
    const std::uint64_t pages =
        (wal_fill_bytes_ + sim::kPageSize - 1) / sim::kPageSize;
    sim::FileHandle& wal = stack_->files().get(wal_inode_);
    if (wal_page_cursor_ + pages > wal.size_pages) wal_page_cursor_ = 0;
    stack_->cache().write(wal, wal_page_cursor_, pages);
    stack_->cache().sync_file(wal_inode_);
    wal_page_cursor_ += pages;
    wal_fill_bytes_ = 0;
    ++stats_.wal_flushes;
  }
  // Durability plane: the real group commit. Only after the frame is on
  // disk do the buffered sequence numbers count as acknowledged.
  if (durable_ && wal_.buffered_records() > 0) {
    if (!wal_.commit()) {
      durability_fault(FaultSite::kWalAppend);
      return false;
    }
  }
  durable_seq_ = wal_tail_seq_;
  return true;
}

void MiniKV::maybe_flush() {
  Memtable& mem = *live()->mem;
  if (mem.approximate_bytes() < config_.memtable_limit_bytes &&
      !mem.index_full()) {
    return;
  }
  flush_memtable();
}

void MiniKV::flush_memtable() {
  LiveState* cur = live();
  if (cur->mem->empty()) return;

  // Durable ordering: (1) WAL group commit — everything in the memtable is
  // acked before it moves; (2) run file; (3) manifest referencing it;
  // (4) publish. A crash between any two steps recovers to a consistent
  // prefix: the WAL still covers whatever the manifest does not.
  if (durable_ && !commit_wal()) return;

  std::vector<std::uint64_t> keys = cur->mem->sorted_keys();
  std::uint64_t file_id = 0;
  if (durable_) {
    file_id = next_file_id_++;
    if (!save_run_file(config_.durable_dir, file_id, keys)) {
      durability_fault(FaultSite::kRunFlush);
      return;
    }
  }

  auto run = std::make_shared<SortedRun>(
      *stack_, config_.geom, std::move(keys), config_.bloom_bits_per_key);

  if (durable_) {
    run_refs_.push_back(RunRef{file_id, run->entry_count()});
    wal_start_seq_ = next_seq_;  // all lower seqs now live in run files
    if (!write_manifest()) return;
  }

  auto next = new LiveState;
  next->mem = make_memtable();
  next->runs = cur->runs;
  next->runs.push_back(std::move(run));
  publish(next);
  ++stats_.flushes;
  ++generation_;
  compact_if_needed();
}

void MiniKV::compact_if_needed() {
  LiveState* cur = live();
  // Overlay count excludes the base run at index 0.
  if (cur->runs.size() - 1 <= config_.max_overlay_runs) return;

  // Merge all overlays into one: sequential read of every overlay block
  // through the cache, then write the merged run.
  std::vector<std::uint64_t> merged;
  for (std::size_t r = 1; r < cur->runs.size(); ++r) {
    Table& run = *cur->runs[r];
    const std::uint64_t epb = run.geometry().entries_per_block();
    for (std::uint64_t idx = 0; idx < run.entry_count(); ++idx) {
      if (idx % epb == 0) run.read_block_for(*stack_, idx);
      merged.push_back(run.key_at(idx));
    }
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());

  std::uint64_t file_id = 0;
  std::vector<RunRef> old_refs;
  if (durable_) {
    file_id = next_file_id_++;
    if (!save_run_file(config_.durable_dir, file_id, merged)) {
      durability_fault(FaultSite::kRunFlush);
      return;
    }
  }

  auto run = std::make_shared<SortedRun>(
      *stack_, config_.geom, std::move(merged), config_.bloom_bits_per_key);

  if (durable_) {
    old_refs = run_refs_;
    run_refs_.clear();
    run_refs_.push_back(RunRef{file_id, run->entry_count()});
    if (!write_manifest()) return;
    // Only after the manifest commit are the old overlay files garbage.
    for (const RunRef& ref : old_refs) {
      (void)kml_fremove(run_path(config_.durable_dir, ref.file_id).c_str());
    }
  }

  // Drop the old overlay sim files, keep the base. Safe even with live
  // concurrent readers: get_concurrent never touches sim state, and the
  // Table objects themselves stay alive until the epoch drains.
  for (std::size_t r = 1; r < cur->runs.size(); ++r) {
    stack_->files().remove(cur->runs[r]->inode());
  }

  auto next = new LiveState;
  next->mem = cur->mem;
  next->runs.push_back(cur->runs[0]);
  next->runs.push_back(std::move(run));
  publish(next);
  ++stats_.compactions;
  ++generation_;
  KML_DEBUG("minikv: compacted overlays into %llu entries",
            static_cast<unsigned long long>(
                live()->runs.back()->entry_count()));
}

bool MiniKV::write_manifest() {
  ManifestData m;
  m.num_base_keys = config_.num_keys;
  m.next_seq = next_seq_;
  m.next_file_id = next_file_id_;
  m.checkpoint_id = checkpoint_id_;
  m.wal_file_id = wal_file_id_;
  m.wal_start_seq = wal_start_seq_;
  m.runs = run_refs_;
  switch (save_manifest(config_.durable_dir, m)) {
    case ManifestSave::kOk:
      return true;
    case ManifestSave::kWriteFailed:
      durability_fault(FaultSite::kCheckpointWrite);
      return false;
    case ManifestSave::kRenameFailed:
      durability_fault(FaultSite::kManifestRename);
      return false;
  }
  return false;
}

bool MiniKV::rotate_wal() {
  const std::uint64_t old_wal_id = wal_file_id_;
  ++checkpoint_id_;
  wal_.close();
  if (!wal_.open(wal_path(config_.durable_dir, checkpoint_id_),
                 /*truncate=*/true)) {
    durability_fault(FaultSite::kWalAppend);
    return false;
  }
  wal_file_id_ = checkpoint_id_;
  wal_start_seq_ = next_seq_;
  if (!write_manifest()) return false;
  // The old log is dead only once the manifest stopped referencing it. A
  // crash right here leaves an orphaned file, not an inconsistency.
  if (old_wal_id != wal_file_id_) {
    (void)kml_fremove(wal_path(config_.durable_dir, old_wal_id).c_str());
  }
  return true;
}

bool MiniKV::checkpoint() {
  if (failed_) return false;
  if (!durable_) {
    // In-memory store: checkpoint degenerates to "flush the buffer".
    flush_memtable();
    ++stats_.checkpoints;
    ++generation_;
    return true;
  }
  // Ack the tail, persist the memtable (flush writes its own manifest),
  // then rotate onto an empty WAL. After this the directory recovers with
  // zero replay.
  if (!commit_wal()) return false;
  flush_memtable();
  if (failed_) return false;
  if (!rotate_wal()) return false;
  ++stats_.checkpoints;
  ++generation_;
  KML_COUNTER_INC(observe::kMetricKvCheckpoints);
  KML_EVENT(observe::EventId::kKvCheckpoint, checkpoint_id_,
            run_refs_.size());
  return true;
}

void MiniKV::crash() {
  failed_ = true;
  wal_.abandon();  // buffered (un-acked) records die with the power
}

void MiniKV::durability_fault(FaultSite site) {
  failed_ = true;
  wal_.abandon();
  KML_COUNTER_INC(observe::kMetricKvDurabilityFaults);
  KML_EVENT(observe::EventId::kKvDurabilityFault,
            static_cast<std::uint64_t>(site), durable_seq_);
  KML_WARN("minikv: durability fault at %s (durable_seq=%llu)",
           kml_fault_site_name(site),
           static_cast<unsigned long long>(durable_seq_));
}

}  // namespace kml::kv
