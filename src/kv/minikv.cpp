#include "kv/minikv.h"

#include "kv/iterator.h"
#include "portability/log.h"

#include <algorithm>

namespace kml::kv {

MiniKV::MiniKV(sim::StorageStack& stack, const KVConfig& config)
    : stack_(&stack), config_(config), memtable_(config.geom.entry_bytes) {
  runs_.push_back(
      std::make_unique<DenseRun>(stack, config.geom, config.num_keys));
  // WAL: a modest circular file.
  wal_inode_ = stack.files().create(/*size_pages=*/4096).inode;
}

MiniKV::~MiniKV() = default;

bool MiniKV::get(std::uint64_t key) {
  stack_->charge_cpu_ns(config_.cpu_get_ns);
  ++stats_.gets;

  if (memtable_.contains(key)) {
    ++stats_.memtable_hits;
    ++stats_.get_hits;
    return true;
  }

  // Newest overlay first, base run last.
  for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {
    Table& run = **it;
    if (!run.may_contain(key)) continue;
    const auto idx = run.find(key);
    if (idx.has_value()) {
      run.read_block_for(*stack_, *idx);
      ++stats_.get_hits;
      return true;
    }
    // Bloom false positive: the store still pays an index/data block probe
    // before discovering the key is absent.
    ++stats_.bloom_false_positives;
    const std::uint64_t probe =
        std::min(run.lower_bound(key),
                 run.entry_count() == 0 ? 0 : run.entry_count() - 1);
    run.read_block_for(*stack_, probe);
  }
  return false;
}

void MiniKV::put(std::uint64_t key) {
  stack_->charge_cpu_ns(config_.cpu_put_ns);
  ++stats_.puts;
  wal_append();
  memtable_.put(key);
  maybe_flush();
}

std::unique_ptr<Iterator> MiniKV::new_iterator() {
  return std::make_unique<Iterator>(*this);
}

void MiniKV::wal_append() {
  wal_fill_bytes_ += config_.geom.entry_bytes;
  if (wal_fill_bytes_ < config_.wal_buffer_bytes) return;

  // Group commit: dirty the WAL pages through the cache (writeback
  // tracepoints fire), then fsync — the durability point of the commit.
  const std::uint64_t pages =
      (wal_fill_bytes_ + sim::kPageSize - 1) / sim::kPageSize;
  sim::FileHandle& wal = stack_->files().get(wal_inode_);
  if (wal_page_cursor_ + pages > wal.size_pages) wal_page_cursor_ = 0;
  stack_->cache().write(wal, wal_page_cursor_, pages);
  stack_->cache().sync_file(wal_inode_);
  wal_page_cursor_ += pages;
  wal_fill_bytes_ = 0;
  ++stats_.wal_flushes;
}

void MiniKV::maybe_flush() {
  if (memtable_.approximate_bytes() < config_.memtable_limit_bytes) return;
  runs_.push_back(std::make_unique<SortedRun>(*stack_, config_.geom,
                                              memtable_.sorted_keys(),
                                              config_.bloom_bits_per_key));
  memtable_.clear();
  ++stats_.flushes;
  compact_if_needed();
}

void MiniKV::compact_if_needed() {
  // Overlay count excludes the base run at index 0.
  if (runs_.size() - 1 <= config_.max_overlay_runs) return;

  // Merge all overlays into one: sequential read of every overlay block
  // through the cache, then write the merged run.
  std::vector<std::uint64_t> merged;
  for (std::size_t r = 1; r < runs_.size(); ++r) {
    Table& run = *runs_[r];
    const std::uint64_t epb = run.geometry().entries_per_block();
    for (std::uint64_t idx = 0; idx < run.entry_count(); ++idx) {
      if (idx % epb == 0) run.read_block_for(*stack_, idx);
      merged.push_back(run.key_at(idx));
    }
  }
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());

  // Drop the old overlay files, keep the base.
  for (std::size_t r = 1; r < runs_.size(); ++r) {
    stack_->files().remove(runs_[r]->inode());
  }
  runs_.resize(1);
  runs_.push_back(std::make_unique<SortedRun>(
      *stack_, config_.geom, std::move(merged), config_.bloom_bits_per_key));
  ++stats_.compactions;
  KML_DEBUG("minikv: compacted overlays into %llu entries",
            static_cast<unsigned long long>(runs_.back()->entry_count()));
}

}  // namespace kml::kv
