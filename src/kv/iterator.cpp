#include "kv/iterator.h"

#include <algorithm>
#include <cassert>

namespace kml::kv {

// Sources: [0] = memtable snapshot (newest), then overlay runs newest->oldest,
// then the base run. Lower source index wins on duplicate keys.
Iterator::Iterator(MiniKV& db) : db_(db), generation_(db.generation()) {
  Source mem;
  mem.table = nullptr;
  sources_.push_back(mem);
  const MiniKV::LiveState* state = db.live();
  snapshot_ = state->mem->sorted_keys();
  pinned_runs_ = state->runs;
  for (auto it = pinned_runs_.rbegin(); it != pinned_runs_.rend(); ++it) {
    Source s;
    s.table = it->get();
    sources_.push_back(s);
  }
}

bool Iterator::ensure_current() {
  if (invalidated_) return false;
  if (db_.generation() != generation_) {
    // The backing store mutated under this iterator. Debug builds stop the
    // test on the spot; release builds park the iterator in a permanent,
    // queryable error state instead of serving stale (or, pre-generation-
    // counter, freed) runs.
    assert(!"kv::Iterator used after MiniKV mutation invalidated it");
    invalidated_ = true;
    valid_ = false;
    return false;
  }
  return true;
}

std::uint64_t Iterator::source_count(const Source& s) const {
  return s.table != nullptr ? s.table->entry_count()
                            : static_cast<std::uint64_t>(snapshot_.size());
}

std::uint64_t Iterator::source_key_at(const Source& s,
                                      std::uint64_t idx) const {
  return s.table != nullptr ? s.table->key_at(idx) : snapshot_[idx];
}

std::uint64_t Iterator::source_lower_bound(const Source& s,
                                           std::uint64_t key) const {
  if (s.table != nullptr) return s.table->lower_bound(key);
  return static_cast<std::uint64_t>(
      std::lower_bound(snapshot_.begin(), snapshot_.end(), key) -
      snapshot_.begin());
}

void Iterator::load_block(Source& s) {
  if (s.table == nullptr) return;  // memtable: in memory already
  const std::uint64_t block =
      s.idx / s.table->geometry().entries_per_block();
  if (block == s.loaded_block) return;
  s.table->read_block_for(db_.stack(), s.idx);
  s.loaded_block = block;
}

void Iterator::seek_forward(std::uint64_t target) {
  forward_ = true;
  for (Source& s : sources_) {
    s.idx = source_lower_bound(s, target);
    s.exhausted = s.idx >= source_count(s);
  }
  settle_forward();
}

void Iterator::seek_backward(std::uint64_t target) {
  forward_ = false;
  for (Source& s : sources_) {
    // Last entry with key <= target.
    std::uint64_t idx;
    if (target == UINT64_MAX) {
      idx = source_count(s);
    } else {
      idx = source_lower_bound(s, target + 1);
    }
    if (idx == 0) {
      s.exhausted = true;
    } else {
      s.idx = idx - 1;
      s.exhausted = false;
    }
  }
  settle_backward();
}

void Iterator::settle_forward() {
  valid_ = false;
  std::uint64_t best = UINT64_MAX;
  for (const Source& s : sources_) {
    if (s.exhausted) continue;
    const std::uint64_t k = source_key_at(s, s.idx);
    if (!valid_ || k < best) {
      best = k;
      valid_ = true;
    }
  }
  if (!valid_) return;
  current_key_ = best;
  // Charge the block read of the newest source holding the winning key.
  for (Source& s : sources_) {
    if (!s.exhausted && source_key_at(s, s.idx) == best) {
      load_block(s);
      break;
    }
  }
}

void Iterator::settle_backward() {
  valid_ = false;
  std::uint64_t best = 0;
  for (const Source& s : sources_) {
    if (s.exhausted) continue;
    const std::uint64_t k = source_key_at(s, s.idx);
    if (!valid_ || k > best) {
      best = k;
      valid_ = true;
    }
  }
  if (!valid_) return;
  current_key_ = best;
  for (Source& s : sources_) {
    if (!s.exhausted && source_key_at(s, s.idx) == best) {
      load_block(s);
      break;
    }
  }
}

void Iterator::seek_to_first() {
  if (!ensure_current()) return;
  seek_forward(0);
}

void Iterator::seek_to_last() {
  if (!ensure_current()) return;
  seek_backward(UINT64_MAX);
}

void Iterator::seek(std::uint64_t key) {
  if (!ensure_current()) return;
  seek_forward(key);
}

void Iterator::next() {
  if (!ensure_current()) return;
  assert(valid_);
  db_.stack_->charge_cpu_ns(db_.config_.cpu_next_ns);
  ++db_.stats_.iter_steps;
  if (!forward_) {
    // Direction switch: reposition strictly after the current key.
    if (current_key_ == UINT64_MAX) {
      valid_ = false;
      return;
    }
    seek_forward(current_key_ + 1);
    return;
  }
  for (Source& s : sources_) {
    if (s.exhausted) continue;
    if (source_key_at(s, s.idx) == current_key_) {
      ++s.idx;
      if (s.idx >= source_count(s)) s.exhausted = true;
    }
  }
  settle_forward();
}

void Iterator::prev() {
  if (!ensure_current()) return;
  assert(valid_);
  db_.stack_->charge_cpu_ns(db_.config_.cpu_next_ns);
  ++db_.stats_.iter_steps;
  if (forward_) {
    if (current_key_ == 0) {
      valid_ = false;
      return;
    }
    seek_backward(current_key_ - 1);
    return;
  }
  for (Source& s : sources_) {
    if (s.exhausted) continue;
    if (source_key_at(s, s.idx) == current_key_) {
      if (s.idx == 0) {
        s.exhausted = true;
      } else {
        --s.idx;
      }
    }
  }
  settle_backward();
}

}  // namespace kml::kv
