// manifest.h — MiniKV's checkpoint manifest and durable run files.
//
// The manifest is the store's commit point: a single small file naming the
// base run, every overlay run file, the live WAL file, and the first
// sequence number the WAL may still hold. It reuses the model-format-v2
// discipline end to end — versioned header, CRC-32 footer, written to a
// temp file and atomically renamed into place — so a crash at any byte
// leaves either the old manifest or the new one, never a torn mix. A load
// that fails the magic/version/CRC check is *rejected* (the caller counts a
// torn manifest and refuses to open the store from it).
//
// Run files are the flushed overlays: a sorted key array with its own
// CRC-footed header, written before the manifest that references them.
// Ordering invariant: run file first, then manifest — a manifest never
// names bytes that are not already durable.
//
// Fault seams (the kill-and-recover harness arms these):
//   kRunFlush        — run-file payload write fails (torn run file)
//   kCheckpointWrite — manifest temp-file payload write fails
//   kManifestRename  — the temp -> MANIFEST rename (the commit) fails
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kml::kv {

inline constexpr std::uint32_t kManifestMagic = 0x464d5648;  // 'KVMF'
inline constexpr std::uint32_t kManifestVersion = 1;
inline constexpr std::uint32_t kRunFileMagic = 0x4e525648;   // 'KVRN'
inline constexpr std::uint32_t kRunFileVersion = 1;
// Bounds a corrupt count field during load (same belt as model load).
inline constexpr std::uint64_t kMaxRunEntries = 1ull << 28;
inline constexpr std::uint64_t kMaxManifestRuns = 1ull << 16;

// One overlay run file reference, newest last (the order runs were
// flushed; lookup priority is derived, not stored).
struct RunRef {
  std::uint64_t file_id = 0;      // names run_<file_id>.kvr
  std::uint64_t entry_count = 0;  // keys in the file (load-time check)
};

struct ManifestData {
  std::uint64_t num_base_keys = 0;   // dense base run [0, num_base_keys)
  std::uint64_t next_seq = 1;        // first unassigned sequence number
  std::uint64_t next_file_id = 1;    // run-file id allocator high-water mark
  std::uint64_t checkpoint_id = 0;   // bumped per WAL rotation
  std::uint64_t wal_file_id = 0;     // names wal_<id>.log
  std::uint64_t wal_start_seq = 1;   // replay filter: seqs below are in runs
  std::vector<RunRef> runs;          // oldest first
};

// Path helpers (single source of truth for the on-disk layout).
std::string manifest_path(const std::string& dir);
std::string run_path(const std::string& dir, std::uint64_t file_id);
std::string wal_path(const std::string& dir, std::uint64_t file_id);

// Write the manifest via temp + atomic rename. On any failure the previous
// manifest (if any) is still intact and the temp file is swept. The result
// names the step that failed so the caller can report the right fault site.
enum class ManifestSave {
  kOk,
  kWriteFailed,   // temp-file payload write (kCheckpointWrite seam)
  kRenameFailed,  // temp -> MANIFEST commit (kManifestRename seam)
};

ManifestSave save_manifest(const std::string& dir, const ManifestData& m);

enum class ManifestLoad {
  kOk,
  kMissing,  // no MANIFEST file: nothing was ever checkpointed here
  kTorn,     // present but fails magic/version/CRC/bounds — refuse to open
};

ManifestLoad load_manifest(const std::string& dir, ManifestData* out);

// Durable overlay run files. save returns false on I/O error or an
// injected kRunFlush fault (a torn file may remain; it is not referenced
// by any manifest until save_manifest succeeds afterwards).
bool save_run_file(const std::string& dir, std::uint64_t file_id,
                   const std::vector<std::uint64_t>& keys);
bool load_run_file(const std::string& dir, std::uint64_t file_id,
                   std::uint64_t expected_entries,
                   std::vector<std::uint64_t>* keys);

}  // namespace kml::kv
