// fixed.h — Q16.16 fixed-point arithmetic (§3.1).
//
// The paper notes that fixed-point representations let matrix math run
// without touching the FPU (no kernel_fpu_begin/end, no FP-register
// save/restore) at the cost of range: Q16.16 covers roughly ±32767 with
// ~1.5e-5 resolution. KML's matrix library is dtype-generic over int, float,
// double, and this type.
//
// Overflow behaviour is saturating (storage-systems code must not trap);
// tests assert saturation at both rails.
#pragma once

#include <compare>
#include <cstdint>

namespace kml::math {

class Fixed {
 public:
  static constexpr int kFracBits = 16;
  static constexpr std::int32_t kOne = 1 << kFracBits;

  constexpr Fixed() = default;

  // Conversions are explicit: silent double<->fixed mixing is how range
  // bugs creep in.
  static Fixed from_double(double v);
  static Fixed from_int(int v);
  static constexpr Fixed from_raw(std::int32_t raw) {
    Fixed f;
    f.raw_ = raw;
    return f;
  }

  double to_double() const;
  int to_int() const;  // rounds to nearest, ties away from zero
  constexpr std::int32_t raw() const { return raw_; }

  Fixed operator+(Fixed o) const;
  Fixed operator-(Fixed o) const;
  Fixed operator*(Fixed o) const;
  Fixed operator/(Fixed o) const;  // saturates on divide-by-zero
  Fixed operator-() const;

  Fixed& operator+=(Fixed o) { return *this = *this + o; }
  Fixed& operator-=(Fixed o) { return *this = *this - o; }
  Fixed& operator*=(Fixed o) { return *this = *this * o; }
  Fixed& operator/=(Fixed o) { return *this = *this / o; }

  constexpr bool operator==(const Fixed&) const = default;
  constexpr auto operator<=>(const Fixed&) const = default;

  static constexpr Fixed max() { return from_raw(INT32_MAX); }
  static constexpr Fixed min() { return from_raw(INT32_MIN); }
  static constexpr Fixed zero() { return from_raw(0); }
  static constexpr Fixed one() { return from_raw(kOne); }

 private:
  std::int32_t raw_ = 0;
};

// Fixed-point sigmoid via a 3-segment piecewise-linear approximation — the
// kind of FPU-free activation a kernel deployment would use. Max absolute
// error ~0.02 (documented in tests).
Fixed fixed_sigmoid(Fixed x);

}  // namespace kml::math
