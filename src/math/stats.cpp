#include "math/stats.h"

#include "math/approx.h"
#include "portability/memory.h"

#include <cassert>

namespace kml::math {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = kml_min(min_, x);
    max_ = kml_max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::reset() {
  n_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double RunningStats::variance() const {
  if (n_ == 0) return 0.0;
  const double v = m2_ / static_cast<double>(n_);
  return v > 0.0 ? v : 0.0;  // clamp -0/-eps from rounding
}

double RunningStats::stddev() const { return kml_sqrt(variance()); }

MovingAverage::MovingAverage(std::size_t window)
    : buf_(static_cast<double*>(
          kml_calloc(window == 0 ? 1 : window, sizeof(double)))),
      window_(window == 0 ? 1 : window) {
  assert(buf_ != nullptr);
}

MovingAverage::~MovingAverage() { kml_free(buf_); }

void MovingAverage::add(double x) {
  if (filled_ == window_) {
    sum_ -= buf_[head_];
  } else {
    ++filled_;
  }
  buf_[head_] = x;
  sum_ += x;
  head_ = (head_ + 1) % window_;
}

double MovingAverage::value() const {
  return filled_ == 0 ? 0.0 : sum_ / static_cast<double>(filled_);
}

void MovingAverage::reset() {
  head_ = 0;
  filled_ = 0;
  sum_ = 0.0;
}

double z_score(double x, double mean, double stddev) {
  if (stddev < 1e-12) return 0.0;
  return (x - mean) / stddev;
}

double pearson(const double* x, const double* y, std::size_t n) {
  if (n < 2) return 0.0;
  RunningStats sx;
  RunningStats sy;
  for (std::size_t i = 0; i < n; ++i) {
    sx.add(x[i]);
    sy.add(y[i]);
  }
  const double dx = sx.stddev();
  const double dy = sy.stddev();
  if (dx < 1e-12 || dy < 1e-12) return 0.0;
  double cov = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
  }
  cov /= static_cast<double>(n);
  return cov / (dx * dy);
}

}  // namespace kml::math
