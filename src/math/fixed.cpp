#include "math/fixed.h"

namespace kml::math {
namespace {

constexpr std::int64_t kRawMax = INT32_MAX;
constexpr std::int64_t kRawMin = INT32_MIN;

std::int32_t saturate(std::int64_t wide) {
  if (wide > kRawMax) return INT32_MAX;
  if (wide < kRawMin) return INT32_MIN;
  return static_cast<std::int32_t>(wide);
}

}  // namespace

Fixed Fixed::from_double(double v) {
  const double scaled = v * static_cast<double>(kOne);
  if (scaled >= static_cast<double>(kRawMax)) return max();
  if (scaled <= static_cast<double>(kRawMin)) return min();
  // Round-to-nearest keeps repeated conversions drift-free.
  return from_raw(static_cast<std::int32_t>(scaled + (scaled >= 0 ? 0.5 : -0.5)));
}

Fixed Fixed::from_int(int v) {
  return from_raw(saturate(static_cast<std::int64_t>(v) << kFracBits));
}

double Fixed::to_double() const {
  return static_cast<double>(raw_) / static_cast<double>(kOne);
}

int Fixed::to_int() const {
  // Round to nearest, ties away from zero — symmetric for negative values
  // (an arithmetic right-shift would floor toward -inf instead, biasing
  // every negative conversion down by up to one unit).
  constexpr std::int64_t kHalf = kOne / 2;
  const std::int64_t wide = raw_;
  return static_cast<int>((wide + (wide >= 0 ? kHalf : -kHalf)) / kOne);
}

Fixed Fixed::operator+(Fixed o) const {
  return from_raw(saturate(static_cast<std::int64_t>(raw_) + o.raw_));
}

Fixed Fixed::operator-(Fixed o) const {
  return from_raw(saturate(static_cast<std::int64_t>(raw_) - o.raw_));
}

Fixed Fixed::operator*(Fixed o) const {
  // Round to nearest, ties away from zero. The shift this replaces rounded
  // toward -inf, so negative products carried a systematic downward bias —
  // the opposite contract from from_double's round-to-nearest. Note the
  // truncating division: an arithmetic shift of the biased value would
  // still floor and reintroduce the bug for negative products.
  constexpr std::int64_t kHalf = static_cast<std::int64_t>(kOne) / 2;
  const std::int64_t prod = static_cast<std::int64_t>(raw_) * o.raw_;
  const std::int64_t wide =
      (prod + (prod >= 0 ? kHalf : -kHalf)) / kOne;
  return from_raw(saturate(wide));
}

Fixed Fixed::operator/(Fixed o) const {
  if (o.raw_ == 0) return raw_ >= 0 ? max() : min();
  // Compute one extra fractional bit, then round to nearest (ties away
  // from zero) instead of truncating toward zero.
  const std::int64_t q2 =
      (static_cast<std::int64_t>(raw_) << (kFracBits + 1)) / o.raw_;
  const std::int64_t wide = (q2 + (q2 >= 0 ? 1 : -1)) / 2;
  return from_raw(saturate(wide));
}

Fixed Fixed::operator-() const {
  if (raw_ == INT32_MIN) return max();
  return from_raw(-raw_);
}

Fixed fixed_sigmoid(Fixed x) {
  // Piecewise-linear "hard sigmoid": clamp(0.25*x + 0.5, 0, 1). The line
  // reaches the rails at x = +-2, so that is where the clamp sits; max
  // absolute error vs the true sigmoid is ~0.12 (at the corners).
  constexpr Fixed kHi = Fixed::from_raw(2 * Fixed::kOne);   // +2.0
  constexpr Fixed kLo = Fixed::from_raw(-2 * Fixed::kOne);  // -2.0
  if (x >= kHi) return Fixed::one();
  if (x <= kLo) return Fixed::zero();
  const Fixed quarter = Fixed::from_raw(Fixed::kOne / 4);
  const Fixed half = Fixed::from_raw(Fixed::kOne / 2);
  return x * quarter + half;
}

}  // namespace kml::math
