// rng.h — deterministic pseudo-random numbers (xoshiro256**).
//
// Every stochastic component in this repository (weight init, SGD shuffling,
// workload generators, device-latency jitter) draws from an explicitly
// seeded Rng instance so experiments are reproducible run-to-run. No
// global RNG state.
#pragma once

#include <cstdint>

namespace kml::math {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform in [0, 2^64).
  std::uint64_t next_u64();

  // Uniform in [0, bound) without modulo bias (Lemire reduction).
  std::uint64_t next_below(std::uint64_t bound);

  // Uniform double in [0, 1).
  double next_double();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Standard normal via Box–Muller (uses kml math only).
  double normal();

  // Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

 private:
  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

// Zipfian generator over [0, n): rank r is drawn with probability
// proportional to 1/(r+1)^theta. Used by the mixgraph workload (Cao et al.
// report RocksDB key popularity is Zipfian with theta ~ 0.9..1.0).
// Implemented with the Gray/Jain rejection-inversion-free approximation:
// cached harmonic constants + inverse CDF bisection on a precomputed table
// for small n, analytic approximation otherwise.
class Zipf {
 public:
  Zipf(std::uint64_t n, double theta, Rng& rng);

  std::uint64_t next();

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
  Rng& rng_;
};

}  // namespace kml::math
