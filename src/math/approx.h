// approx.h — math functions implemented from scratch (§2).
//
// libm is unavailable in kernel context, so KML carries its own
// approximations for every transcendental it needs: exp, log, sigmoid
// (logistic), tanh, sqrt, and pow. All are implemented with range reduction
// plus low-order polynomial/Newton steps — accurate to ~1e-6 relative error
// over the ranges neural-network training exercises (tests pin this down).
//
// None of these call into libm; they compile in a freestanding kernel build.
#pragma once

namespace kml::math {

// e^x. Range-reduced by x = k*ln2 + r, |r| <= ln2/2, then a degree-6
// Taylor/minimax polynomial on r. Saturates to 0 / +inf outside ±709.
double kml_exp(double x);

// Natural logarithm. Frexp-style reduction to m in [sqrt(1/2), sqrt(2)),
// then atanh-series in s = (m-1)/(m+1). Returns -inf at 0, NaN for x < 0.
double kml_log(double x);

// 1 / (1 + e^-x), computed in the numerically stable branch form.
double kml_sigmoid(double x);

// Hyperbolic tangent via the stable sigmoid identity.
double kml_tanh(double x);

// Newton–Raphson square root (4 iterations from a bit-hacked seed).
// Returns NaN for x < 0.
double kml_sqrt(double x);

// x^y for x > 0 via exp(y * log(x)); integer fast path for |y| <= 64.
double kml_pow(double x, double y);

// Contiguous-span variants of exp/sigmoid/tanh, routed through the
// portability SIMD seam. Bit-identical to calling the scalar function on
// each element at every dispatch tier (the vector bodies reproduce the
// scalar algorithm lane for lane and fall back to it outside the vector-
// safe domain). in == out aliasing is allowed.
void kml_exp_span(const double* in, double* out, long n);
void kml_sigmoid_span(const double* in, double* out, long n);
void kml_tanh_span(const double* in, double* out, long n);

// Row-wise helpers used by the softmax layer / cross-entropy loss.
// Computes softmax of `in[0..n)` into `out[0..n)` with the max-subtraction
// trick (never overflows).
void kml_softmax(const double* in, double* out, int n);

// log(sum_i exp(in[i])) with max-subtraction; the stable building block of
// cross-entropy.
double kml_log_sum_exp(const double* in, int n);

// Absolute value / min / max without libm.
inline double kml_abs(double x) { return x < 0 ? -x : x; }
inline double kml_min(double a, double b) { return a < b ? a : b; }
inline double kml_max(double a, double b) { return a > b ? a : b; }

// Not-a-number and infinity helpers (no <cmath> in kernel builds).
bool kml_isnan(double x);
bool kml_isinf(double x);
double kml_nan();
double kml_inf();

}  // namespace kml::math
