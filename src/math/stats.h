// stats.h — running statistics and normalization primitives (§3.2).
//
// KML offers moving average, standard deviation, and Z-score calculation as
// built-in data-normalization functions; the readahead features (§4) are
// built directly on the cumulative variants here. Welford's algorithm keeps
// the running variance single-pass and numerically stable — essential when
// page offsets span 2^40.
#pragma once

#include <cstddef>
#include <cstdint>

namespace kml::math {

// Cumulative (since-reset) mean and standard deviation over a stream,
// Welford update. O(1) memory regardless of stream length.
class RunningStats {
 public:
  void add(double x);
  void reset();

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Population variance/stddev (divide by n): matches the paper's
  // "cumulative moving standard deviation" feature.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-window moving average over the last `window` samples.
// O(window) memory, O(1) update.
class MovingAverage {
 public:
  explicit MovingAverage(std::size_t window);
  ~MovingAverage();
  MovingAverage(const MovingAverage&) = delete;
  MovingAverage& operator=(const MovingAverage&) = delete;

  void add(double x);
  double value() const;  // mean of the samples currently in the window
  std::size_t count() const { return filled_; }
  void reset();

 private:
  double* buf_;  // kml_malloc'd ring
  std::size_t window_;
  std::size_t head_ = 0;
  std::size_t filled_ = 0;
  double sum_ = 0.0;
};

// Z-score of x against a mean/stddev pair; returns 0 when stddev is ~0
// (constant features carry no signal and must not produce inf/NaN).
double z_score(double x, double mean, double stddev);

// Pearson correlation coefficient of two equal-length series (used for the
// paper's feature-selection analysis). Returns 0 when either series is
// constant.
double pearson(const double* x, const double* y, std::size_t n);

}  // namespace kml::math
