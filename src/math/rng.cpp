#include "math/rng.h"

#include "math/approx.h"

namespace kml::math {
namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: expands one seed word into the four xoshiro state words.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr double kTwoPi = 6.283185307179586477;

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is a fixed point of xoshiro; splitmix cannot emit four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  // Marsaglia polar method — needs only kml_sqrt/kml_log, no trig.
  double v1;
  double v2;
  double s;
  do {
    v1 = 2.0 * next_double() - 1.0;
    v2 = 2.0 * next_double() - 1.0;
    s = v1 * v1 + v2 * v2;
  } while (s >= 1.0 || s == 0.0);
  const double factor = kml_sqrt(-2.0 * kml_log(s) / s);
  spare_ = v2 * factor;
  have_spare_ = true;
  return v1 * factor;
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

namespace {
double zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += kml_pow(1.0 / static_cast<double>(i), theta);
  }
  return sum;
}
}  // namespace

Zipf::Zipf(std::uint64_t n, double theta, Rng& rng)
    : n_(n == 0 ? 1 : n),
      theta_(theta),
      alpha_(1.0 / (1.0 - theta)),
      zetan_(zeta(n_, theta)),
      eta_(0.0),
      zeta2_(zeta(2, theta)),
      rng_(rng) {
  eta_ = (1.0 - kml_pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

std::uint64_t Zipf::next() {
  // Gray et al. "Quickly generating billion-record synthetic databases".
  const double u = rng_.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + kml_pow(0.5, theta_)) return 1;
  const double raw =
      static_cast<double>(n_) * kml_pow(eta_ * u - eta_ + 1.0, alpha_);
  std::uint64_t rank = static_cast<std::uint64_t>(raw);
  if (rank >= n_) rank = n_ - 1;
  return rank;
}

}  // namespace kml::math
