#include "math/approx.h"

#include "portability/simd.h"

#include <cstdint>
#include <cstring>

namespace kml::math {
namespace {

constexpr double kLn2 = 0.6931471805599453094;
constexpr double kInvLn2 = 1.4426950408889634074;

double bit_cast_double(std::uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

std::uint64_t bit_cast_u64(double d) {
  std::uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

// 2^k for integer k by direct exponent construction.
double exp2i(int k) {
  if (k < -1074) return 0.0;
  if (k > 1023) return kml_inf();
  if (k < -1022) {
    // Subnormal range: 2^k = 2^(k+52) * 2^-52, both factors normal.
    return bit_cast_double(static_cast<std::uint64_t>(k + 52 + 1023) << 52) *
           bit_cast_double(static_cast<std::uint64_t>(1023 - 52) << 52);
  }
  return bit_cast_double(static_cast<std::uint64_t>(k + 1023) << 52);
}

}  // namespace

bool kml_isnan(double x) { return x != x; }

bool kml_isinf(double x) {
  return (bit_cast_u64(x) & 0x7fffffffffffffffULL) == 0x7ff0000000000000ULL;
}

double kml_nan() { return bit_cast_double(0x7ff8000000000000ULL); }

double kml_inf() { return bit_cast_double(0x7ff0000000000000ULL); }

double kml_exp(double x) {
  if (kml_isnan(x)) return x;
  if (x > 709.78) return kml_inf();
  if (x < -745.0) return 0.0;

  // x = k*ln2 + r with |r| <= ln2/2.
  const int k = static_cast<int>(x * kInvLn2 + (x >= 0 ? 0.5 : -0.5));
  const double r = x - static_cast<double>(k) * kLn2;

  // Degree-9 Taylor on r (|r| <= 0.347): truncation < 1e-13 relative.
  double p = 1.0 / 362880.0;
  p = p * r + 1.0 / 40320.0;
  p = p * r + 1.0 / 5040.0;
  p = p * r + 1.0 / 720.0;
  p = p * r + 1.0 / 120.0;
  p = p * r + 1.0 / 24.0;
  p = p * r + 1.0 / 6.0;
  p = p * r + 0.5;
  p = p * r + 1.0;
  p = p * r + 1.0;
  return p * exp2i(k);
}

double kml_log(double x) {
  if (kml_isnan(x)) return x;
  if (x < 0.0) return kml_nan();
  if (x == 0.0) return -kml_inf();
  if (kml_isinf(x)) return x;

  // Decompose x = m * 2^e with m in [1, 2).
  std::uint64_t bits = bit_cast_u64(x);
  int e = static_cast<int>((bits >> 52) & 0x7ff) - 1023;
  if (e == -1023) {  // subnormal: renormalize
    x *= 4503599627370496.0;  // 2^52
    bits = bit_cast_u64(x);
    e = static_cast<int>((bits >> 52) & 0x7ff) - 1023 - 52;
  }
  double m = bit_cast_double((bits & 0x000fffffffffffffULL) |
                             0x3ff0000000000000ULL);
  // Shift m into [sqrt(1/2), sqrt(2)) so s below is small.
  if (m > 1.4142135623730951) {
    m *= 0.5;
    e += 1;
  }

  // log(m) = 2*atanh(s), s = (m-1)/(m+1), via odd series to s^13.
  const double s = (m - 1.0) / (m + 1.0);
  const double s2 = s * s;
  double p = 1.0 / 13.0;
  p = p * s2 + 1.0 / 11.0;
  p = p * s2 + 1.0 / 9.0;
  p = p * s2 + 1.0 / 7.0;
  p = p * s2 + 1.0 / 5.0;
  p = p * s2 + 1.0 / 3.0;
  p = p * s2 + 1.0;
  return 2.0 * s * p + static_cast<double>(e) * kLn2;
}

double kml_sigmoid(double x) {
  // Stable in both tails: never evaluates exp of a large positive number.
  if (x >= 0.0) {
    const double z = kml_exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = kml_exp(x);
  return z / (1.0 + z);
}

double kml_tanh(double x) {
  // (e^2x - 1) / (e^2x + 1), evaluated on the negative side to avoid
  // overflow and reflected for x > 0 (avoids the cancellation of the
  // 2*sigmoid(2x) - 1 identity near zero).
  if (x > 20.0) return 1.0;
  if (x < -20.0) return -1.0;
  const double ax = kml_abs(x);
  const double z = kml_exp(-2.0 * ax);
  const double t = (1.0 - z) / (1.0 + z);
  return x < 0 ? -t : t;
}

double kml_sqrt(double x) {
  if (kml_isnan(x) || x < 0.0) return kml_nan();
  if (x == 0.0 || kml_isinf(x)) return x;
  // Seed from exponent halving, then Newton iterations.
  std::uint64_t bits = bit_cast_u64(x);
  bits = (bits >> 1) + (0x3ffULL << 51);
  double y = bit_cast_double(bits);
  for (int i = 0; i < 4; ++i) {
    y = 0.5 * (y + x / y);
  }
  return y;
}

double kml_pow(double x, double y) {
  if (y == 0.0) return 1.0;
  // Integer fast path (exact for small integral exponents).
  const int yi = static_cast<int>(y);
  if (static_cast<double>(yi) == y && yi >= -64 && yi <= 64) {
    double base = x;
    int n = yi < 0 ? -yi : yi;
    double acc = 1.0;
    while (n > 0) {
      if ((n & 1) != 0) acc *= base;
      base *= base;
      n >>= 1;
    }
    return yi < 0 ? 1.0 / acc : acc;
  }
  if (x <= 0.0) return kml_nan();
  return kml_exp(y * kml_log(x));
}

// Span variants: the scalar function is passed as the fallback, so the
// scalar dispatch tier IS per-element application of it, and the vector
// tiers are pinned bit-identical to it by the simd bit-identity suite.
void kml_exp_span(const double* in, double* out, long n) {
  kml_simd_exp_span(in, out, n, &kml_exp);
}

void kml_sigmoid_span(const double* in, double* out, long n) {
  kml_simd_sigmoid_span(in, out, n, &kml_sigmoid);
}

void kml_tanh_span(const double* in, double* out, long n) {
  kml_simd_tanh_span(in, out, n, &kml_tanh);
}

void kml_softmax(const double* in, double* out, int n) {
  if (n <= 0) return;
  double mx = in[0];
  for (int i = 1; i < n; ++i) mx = kml_max(mx, in[i]);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    out[i] = kml_exp(in[i] - mx);
    sum += out[i];
  }
  const double inv = 1.0 / sum;
  for (int i = 0; i < n; ++i) out[i] *= inv;
}

double kml_log_sum_exp(const double* in, int n) {
  if (n <= 0) return -kml_inf();
  double mx = in[0];
  for (int i = 1; i < n; ++i) mx = kml_max(mx, in[i]);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += kml_exp(in[i] - mx);
  return mx + kml_log(sum);
}

}  // namespace kml::math
