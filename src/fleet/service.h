// service.h — tenant-sharded batched inference for fleet serving.
//
// The paper tunes one heuristic per open file; the production question
// (ROADMAP item 1, KML extended paper arXiv 2111.11554) is what happens when
// there are *thousands* of open files — tenants — with heavily skewed
// (Zipfian) traffic, all wanting per-window classifications from ONE shared
// model. The FleetService is that serving layer:
//
//   * Tenants are sharded: tenant id -> shard via shard_of() (a hash fold,
//     the reference implementation of the ShardedBuffer tenant→shard
//     contract). Each shard is one SPSC ring of ready feature-windows, so
//     producers never contend across shards.
//   * The drain coalesces ready windows across a shard's tenants into large
//     Engine::infer_batch_scores calls — one forward pass classifies
//     hundreds of tenants' windows, amortizing the per-call fixed costs the
//     same way the per-file tuner batches inodes (DESIGN.md §9), with the
//     matmul parallelized on the thread pool.
//   * The model is fleet-wide and shared; per-tenant adaptation is a cheap
//     output bias added to the shared model's scores before the argmax,
//     learned online from record_outcome() feedback (perceptron-style
//     additive update, clamped). Thousands of tenants cost
//     O(classes) doubles each instead of a model copy.
//   * Admission control + per-tenant rate limiting protect the service:
//     a token bucket per tenant caps windows per tick, a bounded tenant
//     table caps memory, and overload (deep post-drain backlog, a
//     DEGRADED health verdict on the fleet signal — HealthConfig (j))
//     sheds the LOWEST-traffic tenants first: the hot tenants carrying the
//     fleet's traffic keep their decisions, the long Zipf tail falls back
//     to the vanilla heuristic. Every shed/admit stamps a flight-recorder
//     event, so post-mortems show exactly who was dropped and when.
//
// Thread model: the service is SINGLE-THREADED. submit(), drain(), tick(),
// record_outcome(), and the accessors must all be called from one thread
// (or be externally serialized) — the tenant table, stats, and bias state
// are deliberately unsynchronized, so even one producer thread calling
// submit() concurrently with the drain thread is a data race. The SPSC
// shard rings are used here as a per-shard coalescing layout, not as a
// cross-thread handoff. Scaling submit() out to one producer thread per
// shard would additionally need per-shard tenant tables owned by their
// producers (admission, token buckets, and bias move with them); the rings
// already support that split, this class does not yet.
#pragma once

#include "data/sharded_buffer.h"
#include "runtime/engine.h"
#include "runtime/health.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace kml::fleet {

// Compile-time ceilings so queued windows stay fixed-size POD (the rings
// never chase pointers). Models with wider inputs/outputs are rejected at
// construction.
inline constexpr int kMaxFleetFeatures = 8;
inline constexpr int kMaxFleetClasses = 8;

struct FleetConfig {
  // Tenant shards, clamped to [1, ShardedBuffer::kMaxShards]. Each shard is
  // one SPSC ring; shard_of() folds tenant ids onto them.
  unsigned shards = 8;
  // Admission cap: at most this many tenants are active, and the tenant
  // table — active entries plus shed tenants' retained-bias entries —
  // never grows beyond it. When a new admission finds the table full, the
  // lowest-traffic shed entry is evicted to make room (its bias is lost;
  // bias retention across a shed is best-effort, bounded by table slack).
  std::uint32_t max_tenants = 16'384;
  // Total ready-window slots across all shard rings.
  std::size_t queue_capacity = 1 << 15;
  // Coalescing cap: rows per Engine::infer_batch_scores call.
  int max_batch = 256;
  // Per-tenant rate limit: token-bucket refill per tick() (one virtual
  // second in the bench protocol). 0 disables rate limiting.
  std::uint32_t tenant_windows_per_tick = 32;
  // Per-tenant output-bias adaptation: additive learning rate and clamp.
  // bias_lr == 0 disables adaptation (pure shared model).
  double bias_lr = 0.05;
  double bias_max = 2.0;
  // Overload: a post-drain backlog deeper than this sheds `shed_batch`
  // lowest-traffic tenants and latches admissions closed; admissions
  // reopen once the backlog clears below half the threshold. A DEGRADED/
  // FAILED verdict from `health` (the fleet-collapse signal, HealthConfig
  // (j)) sheds and latches the same way.
  std::size_t overload_queue_depth = 1 << 14;
  std::uint32_t shed_batch = 64;
  // Tenant-class rollup thresholds for per-stage latency attribution
  // (telemetry v3): a tenant with >= hot_tenant_windows lifetime decisions
  // is "hot", >= warm_tenant_windows "warm", else "cold". Queue-wait rolls
  // up into three bounded class histograms — per-TENANT histograms at 10k+
  // tenants would be unbounded cardinality, and the Zipf skew means the
  // interesting question is "are the hot tenants aging differently from the
  // tail", which three classes answer.
  std::uint64_t hot_tenant_windows = 1024;
  std::uint64_t warm_tenant_windows = 64;
  // Per-window stage stamping is SAMPLED: 1 in 2^stage_sample_shift windows
  // records queue-wait/queue-age/class-rollup at pop and decision latency
  // at decide (0 = every window, for tests and low-rate deployments).
  // Unsampled, those per-window records priced double-digit percent of a
  // 10k-tenant drain on a 1-CPU host; at the default 1-in-8 the bill drops
  // near the noise floor while a busy service still lands thousands of
  // samples per second — plenty for stable percentiles, which is all the
  // consumers (health signals, bench rows) read. Batch-level stage spans
  // (coalesce/infer/decide) are never sampled.
  std::uint32_t stage_sample_shift = 3;
  const runtime::HealthMonitor* health = nullptr;
  // Serve batches through the engine's attached int8 network
  // (Engine::infer_batch_scores_int8). Requires attach_quantized() on the
  // engine before the first drain; without it the engine falls back to the
  // float path with a one-shot warning, so flipping this on is safe but
  // only fast once the quantized copy is attached.
  bool use_int8 = false;
};

enum class SubmitResult {
  kQueued = 0,      // accepted into the tenant's shard ring
  kRejected,        // admission control said no (cap, overload latch, shed)
  kRateLimited,     // tenant exhausted its token bucket this tick
  kDropped,         // shard ring full (backpressure)
};

struct FleetStats {
  std::uint64_t submitted = 0;      // windows offered to submit()
  std::uint64_t decided = 0;        // windows classified
  std::uint64_t batches = 0;        // infer_batch_scores calls
  std::uint64_t admitted = 0;       // tenants admitted (incl. re-admissions)
  std::uint64_t rejected = 0;       // submit() refusals by admission control
  std::uint64_t rate_limited = 0;   // submit() refusals by the token bucket
  std::uint64_t queue_drops = 0;    // submit() refusals by a full ring
  std::uint64_t shed = 0;           // tenants shed by overload control
  std::uint64_t orphan_windows = 0; // queued windows whose tenant was shed
  std::uint64_t infer_dropped = 0;  // staged windows lost to a failed batch
  std::uint64_t biased_flips = 0;   // decisions changed by per-tenant bias
  std::uint64_t bias_evicted = 0;   // shed entries evicted to admit new ones
};

class FleetService {
 public:
  // The engine must be in inference mode, stay owned by the caller, and
  // outlive the service. Its input width must be <= kMaxFleetFeatures and
  // output width <= kMaxFleetClasses.
  FleetService(runtime::Engine& engine, const FleetConfig& config);

  FleetService(const FleetService&) = delete;
  FleetService& operator=(const FleetService&) = delete;

  // The reference tenant→shard fold (see the ShardedBuffer contract):
  // splitmix-style avalanche of the tenant id, reduced onto
  // [0, shard_count()). Deterministic, stable across runs.
  unsigned shard_of(std::uint64_t tenant) const;

  // Offer one ready feature-window (n raw, un-normalized features) for
  // `tenant`. Admits unknown tenants when admission is open and fewer than
  // max_tenants are active (flight event kFleetAdmit), evicting the
  // lowest-traffic shed entry if the table is at capacity; enforces the
  // tenant's token bucket; pushes onto the tenant's shard ring.
  SubmitResult submit(std::uint64_t tenant, const double* features, int n,
                      std::uint32_t events = 1);

  // Consumer side: drain every shard ring (round-robin, so a hot shard
  // cannot starve the rest), group by shard, and classify each shard's
  // windows in coalesced Engine::infer_batch_scores calls with the
  // per-tenant bias applied before the argmax. Returns windows decided.
  std::size_t drain(std::uint64_t now_ns);

  // Once per virtual second: refills token buckets, publishes the fleet
  // gauges, and runs overload control (backlog + health verdict -> shed
  // lowest-traffic tenants, latch/unlatch admissions).
  void tick(std::uint64_t now_ns);

  // Feedback for per-tenant adaptation: the workload observed
  // `observed_class` for this tenant's last window. Additive bias update
  // toward the observation, away from the mistaken prediction.
  void record_outcome(std::uint64_t tenant, int observed_class);

  // Most recent decision for the tenant; -1 when unknown/undecided.
  int last_class(std::uint64_t tenant) const;

  // Tenants currently admitted and serving.
  std::uint32_t active_tenants() const { return active_; }

  // Total tenant-table entries (active + shed-with-retained-bias). Bounded
  // by FleetConfig::max_tenants.
  std::size_t tenant_table_size() const { return tenants_.size(); }

  // Tenants that have received at least one decision.
  std::uint32_t tenants_served() const { return served_; }

  bool admissions_open() const { return admissions_open_; }

  // Ready windows still queued (post-drain backlog).
  std::size_t backlog() const { return queue_.size(); }

  std::uint64_t folded_pushes() const { return queue_.folded_pushes(); }

  const FleetStats& stats() const { return stats_; }

 private:
  struct QueuedWindow {
    std::uint64_t tenant = 0;
    std::uint64_t enqueue_ns = 0;
    std::uint32_t events = 0;
    double features[kMaxFleetFeatures] = {};
  };

  struct TenantState {
    std::uint64_t windows = 0;   // traffic accounting (shed ordering)
    std::uint32_t tokens = 0;    // rate-limit bucket, refilled per tick
    int last_class = -1;
    bool active = false;
    bool decided = false;
    double bias[kMaxFleetClasses] = {};
  };

  // Classify `rows` staged windows of one shard in one coalesced forward
  // pass; applies bias, updates tenants, records latency.
  void decide_batch(const QueuedWindow* windows, int rows,
                    std::uint64_t now_ns);
  void shed_lowest_traffic(std::uint32_t count);
  // Evict the lowest-traffic inactive entry to keep tenants_ within
  // max_tenants when a new admission needs the slot.
  void evict_one_inactive();

  runtime::Engine& engine_;
  FleetConfig config_;
  int feature_dim_ = 0;
  int classes_ = 0;
  data::ShardedBuffer<QueuedWindow> queue_;
  std::unordered_map<std::uint64_t, TenantState> tenants_;
  std::uint32_t active_ = 0;
  std::uint32_t served_ = 0;
  bool admissions_open_ = true;
  bool infer_failure_logged_ = false;
  // Rolling window counter driving the 1-in-2^stage_sample_shift stage
  // stamping (queue-wait at pop, decision latency at decide); counts every
  // record-site visit so the sample is stratified across tenants
  // regardless of chunk boundaries. Mask precomputed from the config.
  std::uint64_t stage_sample_tick_ = 0;
  std::uint64_t stage_sample_mask_ = 0;
  FleetStats stats_;
  // Drain/decide staging, reused across calls (allocation-free at steady
  // state, like the per-file tuner's batch staging).
  std::vector<QueuedWindow> pop_chunk_;
  std::vector<std::vector<QueuedWindow>> shard_staging_;
  std::vector<double> batch_features_;
  std::vector<double> batch_scores_;
  std::vector<int> batch_classes_;
};

}  // namespace kml::fleet
