#include "fleet/service.h"

#include "observe/flight_recorder.h"
#include "observe/metrics.h"
#include "observe/timeseries.h"
#include "portability/kml_lib.h"

#include <algorithm>
#include <cstring>

namespace kml::fleet {

namespace {

// splitmix64 finalizer: full-avalanche mix so dense tenant-id ranges (fd
// numbers, inode counters) spread evenly over the shards instead of
// striding onto a few of them.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FleetService::FleetService(runtime::Engine& engine, const FleetConfig& config)
    : engine_(engine),
      config_(config),
      queue_(config.queue_capacity,
             std::min(std::max(config.shards, 1u),
                      data::ShardedBuffer<QueuedWindow>::kMaxShards)) {
  config_.shards = queue_.shard_count();
  if (config_.max_batch < 1) config_.max_batch = 1;
  stage_sample_mask_ =
      (std::uint64_t{1} << (config_.stage_sample_shift < 63
                                ? config_.stage_sample_shift
                                : 63)) -
      1;
  feature_dim_ = engine_.num_features();
  classes_ = engine_.num_classes();
  if (feature_dim_ < 1 || feature_dim_ > kMaxFleetFeatures ||
      classes_ < 1 || classes_ > kMaxFleetClasses) {
    KML_ERROR("FleetService: model shape %dx%d exceeds the fleet window "
              "format (max %dx%d); refusing all submissions",
              feature_dim_, classes_, kMaxFleetFeatures, kMaxFleetClasses);
    feature_dim_ = 0;
    classes_ = 0;
    return;
  }
  // Presize every steady-state buffer up front: the drain loop must not
  // allocate while the fleet is overloaded (that is exactly when it runs).
  pop_chunk_.resize(static_cast<std::size_t>(config_.max_batch) * 4);
  shard_staging_.resize(config_.shards);
  for (auto& s : shard_staging_) {
    s.reserve(pop_chunk_.size());
  }
  batch_features_.resize(static_cast<std::size_t>(config_.max_batch) *
                         feature_dim_);
  batch_scores_.resize(static_cast<std::size_t>(config_.max_batch) *
                       classes_);
  batch_classes_.resize(config_.max_batch);
  engine_.warm_up(config_.max_batch);
}

unsigned FleetService::shard_of(std::uint64_t tenant) const {
  return static_cast<unsigned>(mix64(tenant) % queue_.shard_count());
}

SubmitResult FleetService::submit(std::uint64_t tenant, const double* features,
                                  int n, std::uint32_t events) {
  stats_.submitted += 1;
  if (features == nullptr || n != feature_dim_ || feature_dim_ == 0) {
    stats_.rejected += 1;
    KML_COUNTER_INC(observe::kMetricFleetRejected);
    return SubmitResult::kRejected;
  }
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || !it->second.active) {
    // Admission control. A shed tenant re-enters through the same gate and
    // keeps its learned bias while its table entry survives; a brand-new
    // tenant starts from the shared model.
    if (!admissions_open_ ||
        active_ >= config_.max_tenants) {
      stats_.rejected += 1;
      KML_COUNTER_INC(observe::kMetricFleetRejected);
      return SubmitResult::kRejected;
    }
    if (it == tenants_.end() && tenants_.size() >= config_.max_tenants) {
      // The table is full of active tenants plus shed entries kept for
      // their bias. active_ < max_tenants here, so an inactive entry must
      // exist — evict the least valuable one so the table stays bounded
      // by max_tenants even under shed/re-admit churn.
      evict_one_inactive();
    }
    TenantState& t = tenants_[tenant];
    t.active = true;
    t.tokens = config_.tenant_windows_per_tick;
    active_ += 1;
    stats_.admitted += 1;
    KML_COUNTER_INC(observe::kMetricFleetAdmitted);
    KML_EVENT(observe::EventId::kFleetAdmit, tenant, active_);
    it = tenants_.find(tenant);
  }
  TenantState& t = it->second;
  if (config_.tenant_windows_per_tick > 0) {
    if (t.tokens == 0) {
      stats_.rate_limited += 1;
      KML_COUNTER_INC(observe::kMetricFleetRateLimited);
      return SubmitResult::kRateLimited;
    }
    t.tokens -= 1;
  }
  QueuedWindow w;
  w.tenant = tenant;
  w.enqueue_ns = kml_now_ns();
  w.events = events;
  std::memcpy(w.features, features,
              static_cast<std::size_t>(n) * sizeof(double));
  if (!queue_.push(w, shard_of(tenant))) {
    stats_.queue_drops += 1;
    KML_COUNTER_INC(observe::kMetricFleetQueueDrops);
    return SubmitResult::kDropped;
  }
  return SubmitResult::kQueued;
}

std::size_t FleetService::drain(std::uint64_t now_ns) {
  if (feature_dim_ == 0) return 0;
  const std::uint64_t before = stats_.decided;
  const std::size_t chunk = pop_chunk_.size();
  // Stage attribution (telemetry v3): queue-wait is stamped per window at
  // pop time, the regroup walk below counts into the coalesce stage, and
  // decide_batch splits its own work into coalesce/infer/decide. Two clock
  // reads per chunk, all gated on one relaxed load when observe is off;
  // the three per-window records are sampled 1-in-2^stage_sample_shift
  // (see FleetConfig) so attribution never prices the drain itself.
  const bool obs = observe::enabled();
  for (;;) {
    const std::size_t n = queue_.pop_many(pop_chunk_.data(), chunk);
    if (n == 0) break;
    const std::uint64_t pop_ns = obs ? kml_now_ns() : 0;
    // Group by shard: the rings interleave tenants round-robin, so one
    // popped chunk carries every shard's traffic. Per-shard regrouping
    // keeps the ISSUE's coalescing unit — a shard's tenants share each
    // forward pass — while still walking the chunk once.
    for (std::size_t i = 0; i < n; ++i) {
      const QueuedWindow& w = pop_chunk_[i];
      auto it = tenants_.find(w.tenant);
      if (it == tenants_.end() || !it->second.active) {
        // Shed after enqueue: the tenant fell back to the vanilla
        // heuristic, so its stale windows must not burn batch slots.
        stats_.orphan_windows += 1;
        continue;
      }
      if (obs && ((stage_sample_tick_++ & stage_sample_mask_) == 0)) {
        const std::uint64_t wait =
            pop_ns > w.enqueue_ns ? pop_ns - w.enqueue_ns : 0;
        KML_HIST_RECORD(observe::kMetricFleetStageQueueWaitNs, wait);
        KML_HIST_RECORD(observe::kMetricFleetQueueAgeUs, wait / 1000);
        // Tenant-class rollup: three call sites, three cached handles.
        if (it->second.windows >= config_.hot_tenant_windows) {
          KML_HIST_RECORD(observe::kMetricFleetStageQueueWaitHotNs, wait);
        } else if (it->second.windows >= config_.warm_tenant_windows) {
          KML_HIST_RECORD(observe::kMetricFleetStageQueueWaitWarmNs, wait);
        } else {
          KML_HIST_RECORD(observe::kMetricFleetStageQueueWaitColdNs, wait);
        }
      }
      shard_staging_[shard_of(w.tenant)].push_back(w);
    }
    if (obs) {
      KML_HIST_RECORD(observe::kMetricFleetStageCoalesceNs,
                      kml_now_ns() - pop_ns);
    }
    for (auto& staged : shard_staging_) {
      std::size_t off = 0;
      while (off < staged.size()) {
        const int rows = static_cast<int>(
            std::min(staged.size() - off,
                     static_cast<std::size_t>(config_.max_batch)));
        decide_batch(staged.data() + off, rows, now_ns);
        off += static_cast<std::size_t>(rows);
      }
      staged.clear();
    }
    if (n < chunk) break;
  }
  return static_cast<std::size_t>(stats_.decided - before);
}

void FleetService::decide_batch(const QueuedWindow* windows, int rows,
                                std::uint64_t now_ns) {
  // Per-batch stage spans: feature assembly counts as coalesce, the engine
  // call as infer, the bias/argmax/bookkeeping loop as decide. Recorded
  // once per batch (a per-row clock read would cost more than the work it
  // measures at 256-row batches).
  const bool obs = observe::enabled();
  const std::uint64_t t0 = obs ? kml_now_ns() : 0;
  for (int i = 0; i < rows; ++i) {
    std::memcpy(batch_features_.data() +
                    static_cast<std::size_t>(i) * feature_dim_,
                windows[i].features,
                static_cast<std::size_t>(feature_dim_) * sizeof(double));
  }
  const std::uint64_t t1 = obs ? kml_now_ns() : 0;
  if (obs) {
    KML_HIST_RECORD(observe::kMetricFleetStageCoalesceNs, t1 - t0);
  }
  const int done =
      config_.use_int8
          ? engine_.infer_batch_scores_int8(batch_features_.data(),
                                            feature_dim_, rows,
                                            batch_scores_.data(),
                                            batch_classes_.data())
          : engine_.infer_batch_scores(batch_features_.data(), feature_dim_,
                                       rows, batch_scores_.data(),
                                       batch_classes_.data());
  if (done != rows) {
    // The whole staged batch is lost; make that visible instead of letting
    // windows vanish between submitted and decided.
    stats_.infer_dropped += static_cast<std::uint64_t>(rows);
    if (!infer_failure_logged_) {
      infer_failure_logged_ = true;
      KML_ERROR("FleetService: infer_batch_scores decided %d of %d staged "
                "windows; dropping the batch (engine misconfigured or not "
                "in inference mode?)",
                done, rows);
    }
    return;
  }
  const std::uint64_t t2 = obs ? kml_now_ns() : 0;
  if (obs) {
    KML_HIST_RECORD(observe::kMetricFleetStageInferNs, t2 - t1);
  }
  stats_.batches += 1;
  const bool adapt = config_.bias_lr > 0.0;
  for (int i = 0; i < rows; ++i) {
    const QueuedWindow& w = windows[i];
    TenantState& t = tenants_[w.tenant];
    const int raw = batch_classes_[i];
    int best = raw;
    if (adapt) {
      const double* scores =
          batch_scores_.data() + static_cast<std::size_t>(i) * classes_;
      double best_v = scores[0] + t.bias[0];
      best = 0;
      for (int c = 1; c < classes_; ++c) {
        const double v = scores[c] + t.bias[c];
        if (v > best_v) {
          best_v = v;
          best = c;
        }
      }
      if (best != raw) stats_.biased_flips += 1;
    }
    t.last_class = best;
    t.windows += 1;
    if (!t.decided) {
      t.decided = true;
      served_ += 1;
    }
    stats_.decided += 1;
    // End-to-end decision latency rides the same 1-in-2^stage_sample_shift
    // gate as the drain-side stage stamps: its only consumers (health
    // signal (j), bench p50/p99) read percentiles, which sampling
    // preserves, and an unsampled per-window record here was one of the
    // largest telemetry line items on the serving path.
    if (obs && ((stage_sample_tick_++ & stage_sample_mask_) == 0)) {
      const std::uint64_t wait =
          now_ns > w.enqueue_ns ? now_ns - w.enqueue_ns : 0;
      KML_HIST_RECORD(observe::kMetricFleetDecisionNs, wait);
    }
  }
  if (obs) {
    KML_HIST_RECORD(observe::kMetricFleetStageDecideNs, kml_now_ns() - t2);
  }
  KML_COUNTER_ADD(observe::kMetricFleetWindows,
                  static_cast<std::uint64_t>(rows));
}

void FleetService::tick(std::uint64_t now_ns) {
  // The per-tick maintenance path is the fleet's real-time heartbeat, so it
  // also drives the telemetry retention ring (one relaxed compare when a
  // sample is not due; see timeseries.h for the clock-domain contract).
  observe::timeseries_poll(now_ns);
  for (auto& entry : tenants_) {
    if (entry.second.active) {
      entry.second.tokens = config_.tenant_windows_per_tick;
    }
  }
  const std::size_t depth = queue_.size();
  KML_GAUGE_SET(observe::kMetricFleetTenants, active_);
  KML_GAUGE_SET(observe::kMetricFleetQueueDepth, depth);
  const bool health_bad =
      config_.health != nullptr &&
      config_.health->state() != runtime::HealthState::kHealthy;
  const bool deep = config_.overload_queue_depth > 0 &&
                    depth > config_.overload_queue_depth;
  if (deep || health_bad) {
    admissions_open_ = false;
    shed_lowest_traffic(config_.shed_batch);
  } else if (!admissions_open_ &&
             depth <= config_.overload_queue_depth / 2) {
    // Backlog cleared and health is green again: reopen the gate. Shed
    // tenants re-admit themselves on their next submit().
    admissions_open_ = true;
  }
}

void FleetService::shed_lowest_traffic(std::uint32_t count) {
  if (count == 0 || active_ == 0) return;
  // Cold path (only runs while overloaded): full selection over the tenant
  // table is fine at 10k tenants, and lowest-traffic-first means the Zipf
  // tail — tenants the shared model barely serves anyway — absorbs the
  // shed while the head keeps its decisions.
  struct Victim {
    std::uint64_t windows;
    std::uint64_t tenant;
  };
  std::vector<Victim> victims;
  victims.reserve(active_);
  for (const auto& entry : tenants_) {
    if (entry.second.active) {
      victims.push_back(Victim{entry.second.windows, entry.first});
    }
  }
  const std::size_t n_shed =
      std::min<std::size_t>(count, victims.size());
  std::partial_sort(victims.begin(), victims.begin() + n_shed, victims.end(),
                    [](const Victim& a, const Victim& b) {
                      return a.windows != b.windows ? a.windows < b.windows
                                                    : a.tenant < b.tenant;
                    });
  for (std::size_t i = 0; i < n_shed; ++i) {
    TenantState& t = tenants_[victims[i].tenant];
    t.active = false;
    active_ -= 1;
    stats_.shed += 1;
    KML_COUNTER_INC(observe::kMetricFleetShedTotal);
    KML_EVENT(observe::EventId::kFleetShed, victims[i].tenant, t.windows);
  }
}

void FleetService::evict_one_inactive() {
  // Linear scan for the lowest-traffic shed entry. Only reached when a
  // brand-new tenant id arrives with the table at capacity — shed/re-admit
  // churn, already a degraded regime — and never for re-admissions, which
  // reuse their existing entry.
  auto victim = tenants_.end();
  for (auto it = tenants_.begin(); it != tenants_.end(); ++it) {
    if (it->second.active) continue;
    if (victim == tenants_.end() ||
        it->second.windows < victim->second.windows ||
        (it->second.windows == victim->second.windows &&
         it->first < victim->first)) {
      victim = it;
    }
  }
  if (victim == tenants_.end()) return;  // all active: nothing to evict
  tenants_.erase(victim);
  stats_.bias_evicted += 1;
}

void FleetService::record_outcome(std::uint64_t tenant, int observed_class) {
  if (config_.bias_lr <= 0.0 || observed_class < 0 ||
      observed_class >= classes_) {
    return;
  }
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  TenantState& t = it->second;
  if (t.last_class < 0 || t.last_class == observed_class) return;
  t.bias[observed_class] =
      std::min(t.bias[observed_class] + config_.bias_lr, config_.bias_max);
  t.bias[t.last_class] =
      std::max(t.bias[t.last_class] - config_.bias_lr, -config_.bias_max);
}

int FleetService::last_class(std::uint64_t tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? -1 : it->second.last_class;
}

}  // namespace kml::fleet
