#include "fleet/workload.h"

#include "matrix/matrix.h"
#include "nn/loss.h"
#include "nn/sgd.h"

namespace kml::fleet {

int true_class_of(std::uint64_t tenant, int classes) {
  if (classes < 1) return 0;
  // xxhash-style avalanche: adjacent tenant ids land on unrelated classes.
  std::uint64_t x = tenant + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<int>(x % static_cast<std::uint64_t>(classes));
}

void make_window(double* features, int dim, int cls, double noise,
                 math::Rng& rng) {
  const int hot = dim > 0 ? cls % dim : 0;
  for (int j = 0; j < dim; ++j) {
    features[j] = (j == hot ? 3.0 : 0.5) + rng.normal(0.0, noise);
  }
}

nn::Network train_fleet_model(const FleetWorkloadConfig& config,
                              std::uint64_t seed, int samples, int epochs) {
  math::Rng rng(seed);
  matrix::MatD x(samples, config.feature_dim);
  matrix::MatD y(samples, config.classes);
  for (int i = 0; i < samples; ++i) {
    const int cls = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(config.classes)));
    make_window(x.row(i), config.feature_dim, cls, config.noise, rng);
    for (int c = 0; c < config.classes; ++c) {
      y.at(i, c) = c == cls ? 1.0 : 0.0;
    }
  }

  nn::Network net = nn::build_mlp_classifier(
      config.feature_dim, /*hidden=*/8, config.classes, rng);
  net.normalizer().fit(x);
  const matrix::MatD xz = net.normalizer().transform(x);

  nn::CrossEntropyLoss loss;
  nn::SGD opt(/*learning_rate=*/0.1, /*momentum=*/0.9);
  opt.attach(net.params());
  net.train(xz, y, loss, opt, epochs, /*batch_size=*/64, rng);
  net.set_training(false);
  return net;
}

}  // namespace kml::fleet
