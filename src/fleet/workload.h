// workload.h — synthetic fleet workload: per-tenant ground truth, feature
// windows, and a quick shared-model trainer.
//
// bench_fleet and fleet_test need thousands of tenants whose windows are
// classifiable by one small shared model, plus a controllable fraction of
// "divergent" tenants whose true class disagrees with what the shared model
// was trained to predict for their features — those are the tenants the
// per-tenant output bias must rescue. Everything here is deterministic for
// a fixed seed.
#pragma once

#include "math/rng.h"
#include "nn/network.h"

#include <cstdint>

namespace kml::fleet {

struct FleetWorkloadConfig {
  int feature_dim = 4;
  int classes = 4;
  // Feature jitter (stddev of the normal noise around the class centroid).
  double noise = 0.15;
};

// Ground-truth class of a tenant's traffic: a deterministic hash of the
// tenant id, so neighbouring ids get unrelated classes.
int true_class_of(std::uint64_t tenant, int classes);

// Fill features[0..dim) with a window drawn near the centroid of `cls`:
// 3.0 + noise at index cls (mod dim), 0.5 + noise elsewhere. Linearly
// separable at the default noise level, so a tiny MLP reaches ~100%.
void make_window(double* features, int dim, int cls, double noise,
                 math::Rng& rng);

// Train the fleet's shared model on `samples` synthetic windows with
// uniformly drawn classes. The returned network has its Z-score normalizer
// fitted on the training matrix and is left in eval mode, ready to hand to
// runtime::Engine. Deterministic for a fixed seed.
nn::Network train_fleet_model(const FleetWorkloadConfig& config,
                              std::uint64_t seed, int samples = 2048,
                              int epochs = 40);

}  // namespace kml::fleet
