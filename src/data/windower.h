// windower.h — time-windowed event aggregation (§4).
//
// "In the readahead model, we process the collected data points every
// second and then extract features at runtime." The windower buffers raw
// trace records and fires a callback with the completed window each time
// the (virtual or wall) clock crosses a period boundary. Empty windows are
// reported too — "no I/O happened this second" is signal.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace kml::data {

// The record schema the paper's data-collection hooks emit: inode number,
// page offset within the file, and time since module start (§4 "Data
// collection"). `kind` distinguishes the two tracepoints KML attaches to
// (0 = add_to_page_cache, 1 = writeback_dirty_page).
struct TraceRecord {
  std::uint64_t inode;
  std::uint64_t pgoff;
  std::uint64_t time_ns;
  std::uint8_t kind;
};

class Windower {
 public:
  using WindowFn =
      std::function<void(std::uint64_t window_index,
                         const std::vector<TraceRecord>& records)>;

  // period_ns: window length (paper default: 1 second).
  Windower(std::uint64_t period_ns, WindowFn on_window);

  // Feed one record; may fire on_window zero or more times first (one per
  // elapsed period, including empty ones).
  void push(const TraceRecord& record);

  // Advance the clock without a record (lets pure time passage close
  // windows).
  void advance_to(std::uint64_t now_ns);

  // Flush a final partial window (end of run).
  void flush();

  std::uint64_t period_ns() const { return period_ns_; }
  std::uint64_t windows_emitted() const { return next_window_; }

 private:
  void close_windows_until(std::uint64_t now_ns);

  std::uint64_t period_ns_;
  WindowFn on_window_;
  std::vector<TraceRecord> current_;
  std::uint64_t next_window_ = 0;  // index of the window being filled
};

}  // namespace kml::data
