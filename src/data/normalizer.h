// normalizer.h — per-feature Z-score normalization (§3.2, §4).
//
// The readahead model Z-scores each of its features before inference. The
// normalizer can either be fitted offline on a training set (fit once, ship
// the mean/stddev with the model file) or updated online from the stream —
// the paper's in-kernel mode keeps running statistics on the training
// thread.
#pragma once

#include "math/stats.h"
#include "matrix/matrix.h"

#include <vector>

namespace kml::data {

// Min-max scaling to [0, 1] — the second normalization family KML offers.
// Constant features map to 0. Fitted bounds freeze like Z-score moments.
class MinMaxNormalizer {
 public:
  MinMaxNormalizer() = default;
  explicit MinMaxNormalizer(int num_features);

  int num_features() const { return static_cast<int>(lo_.size()); }

  void fit(const matrix::MatD& x);
  void observe(const double* features, int n);

  // Scale a row in place; values outside the fitted range clamp to [0, 1].
  void transform_row(double* features, int n) const;
  matrix::MatD transform(const matrix::MatD& x) const;

  double min(int feature) const { return lo_[static_cast<std::size_t>(feature)]; }
  double max(int feature) const { return hi_[static_cast<std::size_t>(feature)]; }

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
  std::vector<bool> seen_;
};

class ZScoreNormalizer {
 public:
  ZScoreNormalizer() = default;
  explicit ZScoreNormalizer(int num_features);

  int num_features() const { return static_cast<int>(stats_.size()); }

  // Batch fit: reset, then accumulate every row of X.
  void fit(const matrix::MatD& x);

  // Online update from one sample (the in-kernel streaming path).
  void observe(const double* features, int n);

  // Z-score a row in place; features with ~zero variance map to 0.
  void transform_row(double* features, int n) const;

  // Z-score a whole matrix into a copy.
  matrix::MatD transform(const matrix::MatD& x) const;

  double mean(int feature) const { return stats_[feature].mean(); }
  double stddev(int feature) const { return stats_[feature].stddev(); }

  // Serialization hooks: expose/restore the moments so the model file can
  // carry the fitted normalizer.
  void export_moments(std::vector<double>& means,
                      std::vector<double>& stddevs) const;
  void import_moments(const std::vector<double>& means,
                      const std::vector<double>& stddevs);

 private:
  std::vector<math::RunningStats> stats_;
  // Imported (frozen) moments take precedence when set.
  std::vector<double> frozen_mean_;
  std::vector<double> frozen_std_;
  bool frozen_ = false;
};

// Input-drift detector: running per-feature statistics over the live input
// stream, compared against the frozen training-time baseline a deployed
// normalizer carries. The signal is the max across features of
// |running_mean - baseline_mean| / baseline_std — "how many training-time
// standard deviations has the input mean moved", the classic covariate-
// shift alarm. A drifted input distribution silently invalidates the model
// even while every weight stays finite, which is why the health monitor
// treats it as its own DEGRADED signal.
//
// This class does double math and therefore lives in the data layer, above
// the FPU line; it exports the z-score as a milli-scaled integer for the
// observe registry. observe_row() is allocation-free after set_baseline().
class DriftTracker {
 public:
  DriftTracker() = default;

  // Adopt `norm`'s current moments (frozen ones when set) as the baseline.
  // Features whose baseline stddev is ~0 are skipped (no meaningful z).
  void set_baseline(const ZScoreNormalizer& norm);
  bool active() const { return !base_mean_.empty(); }

  // Fold one raw (pre-normalization) feature row into the running stats.
  void observe_row(const double* features, int n);

  // Max per-feature |z| of the running mean vs the baseline, scaled x1000
  // and truncated toward zero. 0 until kMinSamples rows have been seen (a
  // handful of samples is noise, not drift).
  std::int64_t max_z_milli() const;

  std::uint64_t samples() const { return samples_; }
  void reset();

  static constexpr std::uint64_t kMinSamples = 32;

 private:
  std::vector<double> base_mean_;
  std::vector<double> base_std_;
  std::vector<math::RunningStats> stats_;
  std::uint64_t samples_ = 0;
};

}  // namespace kml::data
