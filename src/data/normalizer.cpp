#include "data/normalizer.h"

#include "math/approx.h"
#include "observe/metrics.h"

#include <cassert>

namespace kml::data {

MinMaxNormalizer::MinMaxNormalizer(int num_features)
    : lo_(static_cast<std::size_t>(num_features), 0.0),
      hi_(static_cast<std::size_t>(num_features), 0.0),
      seen_(static_cast<std::size_t>(num_features), false) {}

void MinMaxNormalizer::fit(const matrix::MatD& x) {
  lo_.assign(static_cast<std::size_t>(x.cols()), 0.0);
  hi_.assign(static_cast<std::size_t>(x.cols()), 0.0);
  seen_.assign(static_cast<std::size_t>(x.cols()), false);
  for (int i = 0; i < x.rows(); ++i) observe(x.row(i), x.cols());
}

void MinMaxNormalizer::observe(const double* features, int n) {
  assert(n == num_features());
  for (int j = 0; j < n; ++j) {
    const auto idx = static_cast<std::size_t>(j);
    if (!seen_[idx]) {
      lo_[idx] = features[j];
      hi_[idx] = features[j];
      seen_[idx] = true;
    } else {
      lo_[idx] = math::kml_min(lo_[idx], features[j]);
      hi_[idx] = math::kml_max(hi_[idx], features[j]);
    }
  }
}

void MinMaxNormalizer::transform_row(double* features, int n) const {
  assert(n == num_features());
  for (int j = 0; j < n; ++j) {
    const auto idx = static_cast<std::size_t>(j);
    const double span = hi_[idx] - lo_[idx];
    if (span < 1e-12) {
      features[j] = 0.0;
      continue;
    }
    double v = (features[j] - lo_[idx]) / span;
    if (v < 0.0) v = 0.0;
    if (v > 1.0) v = 1.0;
    features[j] = v;
  }
}

matrix::MatD MinMaxNormalizer::transform(const matrix::MatD& x) const {
  matrix::MatD out = x;
  for (int i = 0; i < out.rows(); ++i) {
    transform_row(out.row(i), out.cols());
  }
  return out;
}

ZScoreNormalizer::ZScoreNormalizer(int num_features)
    : stats_(static_cast<std::size_t>(num_features)) {}

void ZScoreNormalizer::fit(const matrix::MatD& x) {
  // "observe" below is the member function; qualify via kml:: to reach the
  // metrics namespace.
  KML_SPAN_NS(kml::observe::kMetricNormalizeNs);
  stats_.assign(static_cast<std::size_t>(x.cols()), math::RunningStats{});
  frozen_ = false;
  for (int i = 0; i < x.rows(); ++i) {
    observe(x.row(i), x.cols());
  }
}

void ZScoreNormalizer::observe(const double* features, int n) {
  assert(n == num_features());
  for (int j = 0; j < n; ++j) {
    stats_[static_cast<std::size_t>(j)].add(features[j]);
  }
}

void ZScoreNormalizer::transform_row(double* features, int n) const {
  assert(frozen_ ? n == static_cast<int>(frozen_mean_.size())
                 : n == num_features());
  for (int j = 0; j < n; ++j) {
    const auto idx = static_cast<std::size_t>(j);
    const double m = frozen_ ? frozen_mean_[idx] : stats_[idx].mean();
    const double s = frozen_ ? frozen_std_[idx] : stats_[idx].stddev();
    features[j] = math::z_score(features[j], m, s);
  }
}

matrix::MatD ZScoreNormalizer::transform(const matrix::MatD& x) const {
  KML_SPAN_NS(kml::observe::kMetricNormalizeNs);
  matrix::MatD out = x;
  for (int i = 0; i < out.rows(); ++i) {
    transform_row(out.row(i), out.cols());
  }
  return out;
}

void ZScoreNormalizer::export_moments(std::vector<double>& means,
                                      std::vector<double>& stddevs) const {
  means.clear();
  stddevs.clear();
  if (frozen_) {
    means = frozen_mean_;
    stddevs = frozen_std_;
    return;
  }
  for (const auto& s : stats_) {
    means.push_back(s.mean());
    stddevs.push_back(s.stddev());
  }
}

void ZScoreNormalizer::import_moments(const std::vector<double>& means,
                                      const std::vector<double>& stddevs) {
  assert(means.size() == stddevs.size());
  frozen_mean_ = means;
  frozen_std_ = stddevs;
  frozen_ = true;
  stats_.assign(means.size(), math::RunningStats{});
}

void DriftTracker::set_baseline(const ZScoreNormalizer& norm) {
  norm.export_moments(base_mean_, base_std_);
  stats_.assign(base_mean_.size(), math::RunningStats{});
  samples_ = 0;
}

void DriftTracker::observe_row(const double* features, int n) {
  if (static_cast<std::size_t>(n) != stats_.size() || n <= 0) return;
  for (int j = 0; j < n; ++j) {
    stats_[static_cast<std::size_t>(j)].add(features[j]);
  }
  samples_ += 1;
}

std::int64_t DriftTracker::max_z_milli() const {
  if (samples_ < kMinSamples) return 0;
  double worst = 0.0;
  for (std::size_t j = 0; j < stats_.size(); ++j) {
    const double s = base_std_[j];
    if (s < 1e-12) continue;  // constant training feature: z is undefined
    double z = (stats_[j].mean() - base_mean_[j]) / s;
    if (z < 0.0) z = -z;
    if (z > worst) worst = z;
  }
  // Milli-scale with a saturation clamp so an absurd drift cannot overflow
  // the integer channel.
  if (worst > 9e15) worst = 9e15;
  return static_cast<std::int64_t>(worst * 1000.0);
}

void DriftTracker::reset() {
  stats_.assign(base_mean_.size(), math::RunningStats{});
  samples_ = 0;
}

}  // namespace kml::data
