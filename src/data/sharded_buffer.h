// sharded_buffer.h — N-shard generalization of the SPSC collection ring.
//
// The single CircularBuffer serializes all data-collection hooks through one
// producer cursor; with per-CPU hooks (multi-core I/O paths, §3.1) that
// cursor becomes a contended cache line. A ShardedBuffer gives each producer
// its own SPSC ring — push(value, shard) keyed by the producer's stable id
// (CPU number in a kernel deployment, thread slot here) — preserving the
// wait-free, never-blocking producer contract per shard with ZERO new
// synchronization: every (producer, shard) pair is still exactly the SPSC
// shape CircularBuffer guarantees.
//
// Tenant→shard mapping contract (fleet serving): a producer id is a SHARD
// INDEX in [0, shard_count()), not an arbitrary key. Callers that map a
// large id space (tenant ids, inode numbers, CPU numbers beyond the shard
// count) onto shards must fold the key themselves — hash or modulo — and
// then guarantee that every producer landing on the same shard serializes
// with the others on that shard (one thread per shard is the easy way;
// kml::fleet::FleetService::shard_of is the reference implementation).
// Passing an unfolded id "works" only by accident: push() folds it modulo
// the shard count as a last resort, which silently turns two independent
// producers into two unsynchronized writers of one SPSC ring. That fold is
// now loud: a debug assert, plus the "data.buffer.folded_pushes" registry
// counter and folded_pushes() on release builds.
//
// The single consumer (training thread) drains shards round-robin via
// pop_many, so no shard can starve the others, and publishes the aggregated
// ring metrics at the same batch granularity as before. shards == 1 is
// bit-for-bit today's single-ring behavior.
#pragma once

#include "data/circular_buffer.h"

#include <atomic>
#include <cassert>
#include <memory>
#include <vector>

namespace kml::data {

template <typename T>
class ShardedBuffer {
 public:
  static constexpr unsigned kMaxShards = 64;

  // `capacity` is the TOTAL capacity budget, split evenly across shards.
  // shards is clamped to [1, kMaxShards].
  //
  // Two sharp edges, clamped and accounted here:
  //   * The ceil-divide used to be written (capacity + shards - 1) / shards,
  //     which WRAPS for capacities within shards-1 of SIZE_MAX and silently
  //     built kMaxShards one-slot rings out of a near-SIZE_MAX budget (the
  //     same integer-wrap class as the round_up_pow2 bugs fixed in PRs 2
  //     and 7). Divide-first arithmetic cannot wrap; absurd budgets now
  //     reach CircularBuffer's own allocation guard and degrade loudly to
  //     drop-everything rings instead of quietly shrinking to nothing.
  //   * Each shard ring rounds its capacity up to a power of two, so the
  //     TOTAL allocated budget can exceed the request by up to 2x (e.g.
  //     65 slots over 64 shards -> 64 rings of 2 = 128 slots). capacity()
  //     reports what was actually allocated, requested_capacity() what was
  //     asked for, and a construction-time warning fires when the round-up
  //     inflates the budget by more than 50% — size the request as
  //     shards x power-of-two to make the two numbers agree.
  explicit ShardedBuffer(std::size_t capacity, unsigned shards = 1) {
    if (shards < 1) shards = 1;
    if (shards > kMaxShards) shards = kMaxShards;
    requested_capacity_ = capacity;
    std::size_t per = capacity / shards + (capacity % shards != 0 ? 1 : 0);
    if (per == 0) per = 1;
    shards_.reserve(shards);
    for (unsigned i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<CircularBuffer<T>>(per));
    }
    const std::size_t actual = this->capacity();
    if (actual > capacity && actual - capacity > capacity / 2) {
      KML_WARN("ShardedBuffer: per-shard power-of-two round-up inflated the "
               "capacity budget %zu -> %zu over %u shards",
               capacity, actual, shards);
    }
  }

  ShardedBuffer(const ShardedBuffer&) = delete;
  ShardedBuffer& operator=(const ShardedBuffer&) = delete;

  unsigned shard_count() const {
    return static_cast<unsigned>(shards_.size());
  }

  // Producer side: wait-free, safe for one producer per shard. `shard` must
  // already be folded into [0, shard_count()) — see the tenant→shard
  // contract above. An out-of-range id is a contract violation: debug
  // builds assert; release builds fold modulo the shard count (the producer
  // then races any producer legitimately owning that shard) and count the
  // violation so it is visible in tool_metrics_dump and folded_pushes().
  bool push(const T& value, unsigned shard = 0) {
    const std::size_t n = shards_.size();
    if (shard >= n) {
      assert(!"ShardedBuffer::push: shard id not pre-folded into "
              "[0, shard_count()) — the SPSC contract is broken");
      folded_pushes_.fetch_add(1, std::memory_order_relaxed);
      KML_COUNTER_INC(observe::kMetricBufferFoldedPushes);
      shard = static_cast<unsigned>(shard % n);
    }
    return shards_[shard]->push(value);
  }

  // Consumer side: single consumer only. Round-robin drain across shards —
  // the cursor persists across calls so a hot shard cannot starve the rest.
  std::size_t pop_many(T* out, std::size_t max) {
    const std::size_t n_shards = shards_.size();
    std::size_t n = 0;
    std::size_t dry = 0;  // consecutive empty shards seen
    while (n < max && dry < n_shards) {
      if (shards_[cursor_]->pop(out[n])) {
        ++n;
        dry = 0;
      } else {
        ++dry;
      }
      cursor_ = (cursor_ + 1) % n_shards;
    }
    publish_metrics();
    return n;
  }

  // Single-element drain, same round-robin cursor, no metric publication —
  // window-drain consumers call publish_metrics() once after their loop,
  // exactly like the single-ring pattern.
  bool pop(T& out) {
    const std::size_t n_shards = shards_.size();
    for (std::size_t i = 0; i < n_shards; ++i) {
      const std::size_t idx = cursor_;
      cursor_ = (cursor_ + 1) % n_shards;
      if (shards_[idx]->pop(out)) return true;
    }
    return false;
  }

  // Aggregate the per-shard ring counters into the shared observe registry
  // (each shard publishes its own deltas; the registry sums them).
  void publish_metrics() {
    for (auto& s : shards_) s->publish_metrics();
  }

  // Aggregates across shards. Approximate under concurrent producers,
  // exactly like the single-ring size().
  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& s : shards_) total += s->size();
    return total;
  }

  bool empty() const { return size() == 0; }

  // Slots actually allocated (after the per-shard power-of-two round-up);
  // >= requested_capacity() whenever allocation succeeded.
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const auto& s : shards_) total += s->capacity();
    return total;
  }

  // The capacity budget the constructor was asked for.
  std::size_t requested_capacity() const { return requested_capacity_; }

  std::uint64_t dropped() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s->dropped();
    return total;
  }

  // Pushes that arrived with an unfolded (out-of-range) shard id and were
  // folded modulo the shard count — every one is a latent SPSC violation.
  std::uint64_t folded_pushes() const {
    return folded_pushes_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::unique_ptr<CircularBuffer<T>>> shards_;
  std::size_t cursor_ = 0;  // consumer-side round-robin position
  std::size_t requested_capacity_ = 0;
  std::atomic<std::uint64_t> folded_pushes_{0};
};

}  // namespace kml::data
