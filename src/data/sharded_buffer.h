// sharded_buffer.h — N-shard generalization of the SPSC collection ring.
//
// The single CircularBuffer serializes all data-collection hooks through one
// producer cursor; with per-CPU hooks (multi-core I/O paths, §3.1) that
// cursor becomes a contended cache line. A ShardedBuffer gives each producer
// its own SPSC ring — push(value, shard) keyed by the producer's stable id
// (CPU number in a kernel deployment, thread slot here) — preserving the
// wait-free, never-blocking producer contract per shard with ZERO new
// synchronization: every (producer, shard) pair is still exactly the SPSC
// shape CircularBuffer guarantees.
//
// The single consumer (training thread) drains shards round-robin via
// pop_many, so no shard can starve the others, and publishes the aggregated
// ring metrics at the same batch granularity as before. shards == 1 is
// bit-for-bit today's single-ring behavior.
#pragma once

#include "data/circular_buffer.h"

#include <memory>
#include <vector>

namespace kml::data {

template <typename T>
class ShardedBuffer {
 public:
  static constexpr unsigned kMaxShards = 64;

  // `capacity` is the TOTAL capacity budget, split evenly across shards
  // (each shard rounds up to a power of two, as before). shards is clamped
  // to [1, kMaxShards].
  explicit ShardedBuffer(std::size_t capacity, unsigned shards = 1) {
    if (shards < 1) shards = 1;
    if (shards > kMaxShards) shards = kMaxShards;
    const std::size_t per =
        (capacity + shards - 1) / shards;
    shards_.reserve(shards);
    for (unsigned i = 0; i < shards; ++i) {
      shards_.push_back(
          std::make_unique<CircularBuffer<T>>(per == 0 ? 1 : per));
    }
  }

  ShardedBuffer(const ShardedBuffer&) = delete;
  ShardedBuffer& operator=(const ShardedBuffer&) = delete;

  unsigned shard_count() const {
    return static_cast<unsigned>(shards_.size());
  }

  // Producer side: wait-free, safe for one producer per shard. Producers
  // with ids beyond the shard count fold back with a modulo — correctness
  // then requires those producers to serialize among themselves, which is
  // the pre-sharding contract.
  bool push(const T& value, unsigned shard = 0) {
    return shards_[shard % shards_.size()]->push(value);
  }

  // Consumer side: single consumer only. Round-robin drain across shards —
  // the cursor persists across calls so a hot shard cannot starve the rest.
  std::size_t pop_many(T* out, std::size_t max) {
    const std::size_t n_shards = shards_.size();
    std::size_t n = 0;
    std::size_t dry = 0;  // consecutive empty shards seen
    while (n < max && dry < n_shards) {
      if (shards_[cursor_]->pop(out[n])) {
        ++n;
        dry = 0;
      } else {
        ++dry;
      }
      cursor_ = (cursor_ + 1) % n_shards;
    }
    publish_metrics();
    return n;
  }

  // Single-element drain, same round-robin cursor, no metric publication —
  // window-drain consumers call publish_metrics() once after their loop,
  // exactly like the single-ring pattern.
  bool pop(T& out) {
    const std::size_t n_shards = shards_.size();
    for (std::size_t i = 0; i < n_shards; ++i) {
      const std::size_t idx = cursor_;
      cursor_ = (cursor_ + 1) % n_shards;
      if (shards_[idx]->pop(out)) return true;
    }
    return false;
  }

  // Aggregate the per-shard ring counters into the shared observe registry
  // (each shard publishes its own deltas; the registry sums them).
  void publish_metrics() {
    for (auto& s : shards_) s->publish_metrics();
  }

  // Aggregates across shards. Approximate under concurrent producers,
  // exactly like the single-ring size().
  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& s : shards_) total += s->size();
    return total;
  }

  bool empty() const { return size() == 0; }

  std::size_t capacity() const {
    std::size_t total = 0;
    for (const auto& s : shards_) total += s->capacity();
    return total;
  }

  std::uint64_t dropped() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s->dropped();
    return total;
  }

 private:
  std::vector<std::unique_ptr<CircularBuffer<T>>> shards_;
  std::size_t cursor_ = 0;  // consumer-side round-robin position
};

}  // namespace kml::data
