// dataset.h — labeled training-set container with shuffling and k-fold
// cross-validation splits (§4: "we measured the performance of our neural
// network using k-fold cross-validation with k = 10").
#pragma once

#include "math/rng.h"
#include "matrix/matrix.h"

#include <vector>

namespace kml::data {

// Rows of feature vectors with integer class labels.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(int num_features) : num_features_(num_features) {}

  int num_features() const { return num_features_; }
  int size() const { return static_cast<int>(labels_.size()); }
  int num_classes() const;

  // Append one sample; `features` must have num_features() entries.
  void add(const double* features, int label);

  const double* features(int i) const {
    return &x_[static_cast<std::size_t>(i) * num_features_];
  }
  int label(int i) const { return labels_[static_cast<std::size_t>(i)]; }

  // Materialize as matrices: X is (n x f), Y is one-hot (n x num_classes).
  matrix::MatD to_matrix() const;
  matrix::MatD to_one_hot(int num_classes) const;
  matrix::MatI to_labels() const;

  // In-place Fisher–Yates shuffle.
  void shuffle(math::Rng& rng);

  // Select a subset by row indices.
  Dataset subset(const std::vector<int>& indices) const;

  // Append all samples from another dataset (feature counts must match).
  void append(const Dataset& other);

 private:
  int num_features_ = 0;
  std::vector<double> x_;   // row-major, size() * num_features_
  std::vector<int> labels_;
};

// Persist a dataset as CSV (`f0,f1,...,label` rows). Lets the user-space
// development loop collect traces once and iterate on models offline.
bool save_dataset_csv(const Dataset& dataset, const char* path);

// Load a dataset written by save_dataset_csv. Returns false on I/O or
// parse failure; `out` is untouched on failure.
bool load_dataset_csv(Dataset& out, const char* path);

// One fold of a k-fold split.
struct Fold {
  Dataset train;
  Dataset test;
};

// Deterministic k-fold split: shuffles a copy with `rng`, then deals rows
// round-robin into k folds. Every row appears in exactly one test fold.
std::vector<Fold> k_fold_split(const Dataset& data, int k, math::Rng& rng);

// Simple train/test split by fraction (0 < test_fraction < 1).
Fold train_test_split(const Dataset& data, double test_fraction,
                      math::Rng& rng);

}  // namespace kml::data
