#include "data/circular_buffer.h"

namespace kml::data {

// Header-only template; this TU exists to give the target a compile check
// for the common instantiations.
template class CircularBuffer<double>;
template class CircularBuffer<std::uint64_t>;

}  // namespace kml::data
