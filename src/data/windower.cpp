#include "data/windower.h"

#include <cassert>
#include <utility>

namespace kml::data {

Windower::Windower(std::uint64_t period_ns, WindowFn on_window)
    : period_ns_(period_ns == 0 ? 1 : period_ns),
      on_window_(std::move(on_window)) {}

void Windower::close_windows_until(std::uint64_t now_ns) {
  // A record at time t belongs to window floor(t / period). Close every
  // window strictly before the one containing now_ns.
  const std::uint64_t target = now_ns / period_ns_;
  while (next_window_ < target) {
    if (on_window_) on_window_(next_window_, current_);
    current_.clear();
    ++next_window_;
  }
}

void Windower::push(const TraceRecord& record) {
  close_windows_until(record.time_ns);
  current_.push_back(record);
}

void Windower::advance_to(std::uint64_t now_ns) {
  close_windows_until(now_ns);
}

void Windower::flush() {
  if (on_window_) on_window_(next_window_, current_);
  current_.clear();
  ++next_window_;
}

}  // namespace kml::data
