// circular_buffer.h — lock-free single-producer/single-consumer ring (§3.1–3.2).
//
// This is the channel between KML's data-collection hooks (which run inline
// on the I/O path and must never block, take a lock, or touch the FPU) and
// the asynchronous training/normalization thread. Capacity is fixed at
// construction to cap memory use; when the consumer falls behind, push()
// fails and the sample is *dropped* — the paper accepts bounded sample loss
// over unbounded memory or producer stalls, and tells users to size the
// buffer against their sampling rate.
//
// Progress guarantees: push() and pop() are wait-free (one CAS-free
// load/store pair each); correct for exactly one producer thread and one
// consumer thread, which is KML's deployment shape (I/O path -> trainer).
#pragma once

#include "observe/flight_recorder.h"
#include "observe/metrics.h"
#include "portability/bits.h"
#include "portability/fault.h"
#include "portability/log.h"
#include "portability/memory.h"
#include "portability/thread.h"

#include <atomic>
#include <cstddef>
#include <limits>
#include <new>

namespace kml::data {

template <typename T>
class CircularBuffer {
 public:
  // Capacity is rounded up to a power of two (index masking beats modulo on
  // the hot path). Usable slots = capacity (one-slot-reserve avoided by
  // using monotonically increasing counters).
  //
  // Allocation failure (memory pressure, §3.1) must not take down the I/O
  // path: the buffer degrades to zero capacity — every push() drops and is
  // counted, pop() reports empty — instead of dereferencing a null slot
  // array.
  explicit CircularBuffer(std::size_t capacity) {
    const std::size_t cap = round_up_pow2(capacity == 0 ? 1 : capacity);
    if (cap > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      KML_ERROR("CircularBuffer: capacity overflow (%zu slots)", cap);
      return;
    }
    auto* slots = static_cast<T*>(kml_malloc(cap * sizeof(T)));
    if (slots == nullptr) {
      KML_ERROR("CircularBuffer: allocation failed (%zu slots); degrading "
                "to a drop-everything buffer",
                cap);
      return;
    }
    for (std::size_t i = 0; i < cap; ++i) new (&slots[i]) T{};
    slots_ = slots;
    capacity_ = cap;
    mask_ = cap - 1;
  }

  ~CircularBuffer() {
    if (slots_ == nullptr) return;
    for (std::size_t i = 0; i < capacity_; ++i) slots_[i].~T();
    kml_free(slots_);
  }

  CircularBuffer(const CircularBuffer&) = delete;
  CircularBuffer& operator=(const CircularBuffer&) = delete;

  // Producer side. Returns false (and counts a drop) when full, when the
  // buffer degraded to zero capacity at construction, or when a forced-drop
  // fault is armed (consumer-stall rehearsal).
  bool push(const T& value) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= capacity_ ||
        kml_fault_should_fail(FaultSite::kBufferPush)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[head & mask_] = value;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when empty.
  bool pop(T& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return false;
    out = slots_[tail & mask_];
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Drain up to `max` elements into `out[]`; returns the count. Consumer
  // side only.
  std::size_t pop_many(T* out, std::size_t max) {
    std::size_t n = 0;
    while (n < max && pop(out[n])) ++n;
    publish_metrics();
    return n;
  }

  // Flush push/pop/drop counts and current occupancy into the metrics
  // registry as deltas since the previous publish. The per-event paths carry
  // ZERO instrumentation cost: head_/tail_/dropped_ — which the ring must
  // maintain anyway — are the metric, and this samples them at batch
  // granularity (every pop_many(); window-drain consumers call it after
  // their pop() loops). Consumer side only: the pub_* cursors are plain
  // fields shared with pop_many's calls.
  void publish_metrics() {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t drop = dropped_.load(std::memory_order_relaxed);
    if (head != pub_head_) {
      KML_COUNTER_ADD(observe::kMetricBufferPush, head - pub_head_);
      KML_EVENT(observe::EventId::kBufferPush, head - pub_head_,
                head > tail ? head - tail : 0);
      pub_head_ = head;
    }
    if (tail != pub_tail_) {
      KML_COUNTER_ADD(observe::kMetricBufferPop, tail - pub_tail_);
      pub_tail_ = tail;
    }
    if (drop != pub_dropped_) {
      KML_COUNTER_ADD(observe::kMetricBufferDrop, drop - pub_dropped_);
      KML_EVENT(observe::EventId::kBufferDrop, drop - pub_dropped_, 0);
      pub_dropped_ = drop;
    }
    KML_GAUGE_SET(observe::kMetricBufferOccupancy,
                  head > tail ? head - tail : 0);
  }

  // 0 when construction-time allocation failed (degraded mode).
  std::size_t capacity() const { return capacity_; }

  // Approximate occupancy (exact when called from the consumer).
  //
  // Tail is loaded *before* head: a pop() racing between the two loads can
  // only make the (stale) tail smaller than it is now, so the difference
  // over-estimates occupancy by at most the elements consumed in the race
  // window — it can never go negative and wrap to ~2^64 the way the
  // head-first order could. The result feeds the drop-rate/occupancy gauge,
  // where a wrapped value would poison health decisions, so it is also
  // clamped to [0, capacity] as a final guard.
  std::size_t size() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (head <= tail) return 0;
    const std::uint64_t occupied = head - tail;
    return static_cast<std::size_t>(occupied < capacity_ ? occupied
                                                         : capacity_);
  }

  bool empty() const { return size() == 0; }

  // Samples lost to a full buffer since construction — the accuracy-vs-
  // memory knob the paper tells users to watch.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  static std::size_t round_up_pow2(std::size_t v) {
    // Guarded shared implementation (portability/bits.h): clamps instead of
    // wrapping for v above the largest representable power of two. The
    // clamped result still trips the capacity-overflow guard in the
    // constructor (for any sizeof(T) > 1), which degrades to the
    // zero-capacity drop-everything buffer instead of hanging the caller.
    return kml_round_up_pow2(v);
  }

  std::size_t capacity_ = 0;
  std::size_t mask_ = 0;
  T* slots_ = nullptr;
  // Producer and consumer counters on separate cache lines to avoid false
  // sharing between the I/O path and the training thread.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  alignas(64) std::atomic<std::uint64_t> dropped_{0};
  // Last values flushed to the metrics registry (consumer side only).
  std::uint64_t pub_head_ = 0;
  std::uint64_t pub_tail_ = 0;
  std::uint64_t pub_dropped_ = 0;
};

}  // namespace kml::data
