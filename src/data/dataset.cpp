#include "data/dataset.h"

#include "portability/file.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace kml::data {

int Dataset::num_classes() const {
  int mx = -1;
  for (int l : labels_) {
    if (l > mx) mx = l;
  }
  return mx + 1;
}

void Dataset::add(const double* features, int label) {
  assert(num_features_ > 0);
  x_.insert(x_.end(), features, features + num_features_);
  labels_.push_back(label);
}

matrix::MatD Dataset::to_matrix() const {
  matrix::MatD m(size(), num_features_);
  for (int i = 0; i < size(); ++i) {
    const double* src = features(i);
    for (int j = 0; j < num_features_; ++j) m.at(i, j) = src[j];
  }
  return m;
}

matrix::MatD Dataset::to_one_hot(int nc) const {
  matrix::MatD m(size(), nc);
  for (int i = 0; i < size(); ++i) {
    assert(label(i) >= 0 && label(i) < nc);
    m.at(i, label(i)) = 1.0;
  }
  return m;
}

matrix::MatI Dataset::to_labels() const {
  matrix::MatI m(size(), 1);
  for (int i = 0; i < size(); ++i) m.at(i, 0) = label(i);
  return m;
}

void Dataset::shuffle(math::Rng& rng) {
  for (int i = size() - 1; i > 0; --i) {
    const int j = static_cast<int>(
        rng.next_below(static_cast<std::uint64_t>(i) + 1));
    std::swap(labels_[static_cast<std::size_t>(i)],
              labels_[static_cast<std::size_t>(j)]);
    for (int f = 0; f < num_features_; ++f) {
      std::swap(x_[static_cast<std::size_t>(i) * num_features_ + f],
                x_[static_cast<std::size_t>(j) * num_features_ + f]);
    }
  }
}

Dataset Dataset::subset(const std::vector<int>& indices) const {
  Dataset out(num_features_);
  for (int i : indices) {
    assert(i >= 0 && i < size());
    out.add(features(i), label(i));
  }
  return out;
}

void Dataset::append(const Dataset& other) {
  if (num_features_ == 0) num_features_ = other.num_features_;
  assert(num_features_ == other.num_features_);
  for (int i = 0; i < other.size(); ++i) {
    add(other.features(i), other.label(i));
  }
}

bool save_dataset_csv(const Dataset& dataset, const char* path) {
  KmlFile* f = kml_fopen(path, "w");
  if (f == nullptr) return false;
  bool ok = true;
  char line[1024];
  for (int i = 0; ok && i < dataset.size(); ++i) {
    int pos = 0;
    for (int j = 0; j < dataset.num_features(); ++j) {
      pos += std::snprintf(line + pos, sizeof(line) - pos, "%.17g,",
                           dataset.features(i)[j]);
    }
    pos += std::snprintf(line + pos, sizeof(line) - pos, "%d\n",
                         dataset.label(i));
    ok = kml_fwrite(f, line, static_cast<std::size_t>(pos)) == pos;
  }
  kml_fclose(f);
  return ok;
}

bool load_dataset_csv(Dataset& out, const char* path) {
  const std::int64_t size = kml_fsize(path);
  if (size <= 0) return false;
  KmlFile* f = kml_fopen(path, "r");
  if (f == nullptr) return false;
  std::string content(static_cast<std::size_t>(size), '\0');
  const bool read_ok = kml_fread(f, content.data(), content.size()) == size;
  kml_fclose(f);
  if (!read_ok) return false;

  Dataset parsed;
  std::vector<double> row;
  const char* p = content.c_str();
  while (*p != '\0') {
    const char* line_end = std::strchr(p, '\n');
    if (line_end == nullptr) line_end = p + std::strlen(p);
    row.clear();
    const char* cursor = p;
    while (cursor < line_end) {
      char* next = nullptr;
      row.push_back(std::strtod(cursor, &next));
      if (next == cursor) return false;  // parse failure
      cursor = next;
      if (cursor < line_end && *cursor == ',') ++cursor;
    }
    if (row.size() < 2) return false;  // need >= 1 feature + label
    const int label = static_cast<int>(row.back());
    row.pop_back();
    if (parsed.num_features() == 0) {
      parsed = Dataset(static_cast<int>(row.size()));
    } else if (static_cast<int>(row.size()) != parsed.num_features()) {
      return false;  // ragged rows
    }
    parsed.add(row.data(), label);
    p = *line_end == '\n' ? line_end + 1 : line_end;
  }
  if (parsed.size() == 0) return false;
  out = std::move(parsed);
  return true;
}

std::vector<Fold> k_fold_split(const Dataset& data, int k, math::Rng& rng) {
  assert(k >= 2 && data.size() >= k);
  Dataset shuffled = data;
  shuffled.shuffle(rng);

  std::vector<std::vector<int>> fold_rows(static_cast<std::size_t>(k));
  for (int i = 0; i < shuffled.size(); ++i) {
    fold_rows[static_cast<std::size_t>(i % k)].push_back(i);
  }

  std::vector<Fold> folds;
  folds.reserve(static_cast<std::size_t>(k));
  for (int f = 0; f < k; ++f) {
    Fold fold;
    std::vector<int> train_rows;
    for (int g = 0; g < k; ++g) {
      if (g == f) continue;
      train_rows.insert(train_rows.end(),
                        fold_rows[static_cast<std::size_t>(g)].begin(),
                        fold_rows[static_cast<std::size_t>(g)].end());
    }
    fold.train = shuffled.subset(train_rows);
    fold.test = shuffled.subset(fold_rows[static_cast<std::size_t>(f)]);
    folds.push_back(std::move(fold));
  }
  return folds;
}

Fold train_test_split(const Dataset& data, double test_fraction,
                      math::Rng& rng) {
  assert(test_fraction > 0.0 && test_fraction < 1.0);
  Dataset shuffled = data;
  shuffled.shuffle(rng);
  const int n_test = static_cast<int>(test_fraction * shuffled.size());
  std::vector<int> test_rows;
  std::vector<int> train_rows;
  for (int i = 0; i < shuffled.size(); ++i) {
    (i < n_test ? test_rows : train_rows).push_back(i);
  }
  return Fold{shuffled.subset(train_rows), shuffled.subset(test_rows)};
}

}  // namespace kml::data
