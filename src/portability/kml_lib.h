// kml_lib.h — KML development/portability API.
//
// The paper (§3.3) describes a five-part development API (system memory
// allocation, threading, logging, atomic operations, and file operations;
// 27 functions total) that lets the *exact same* KML code compile and run in
// user space and in the kernel, differing only in this thin portability
// layer. This header is that seam: every KML module calls only kml_* symbols
// for OS services. This repository ships the userspace backend (the paper's
// model-development path); a kernel backend would reimplement kml_lib.cpp,
// memory.cpp, thread.cpp, file.cpp and log.cpp against kmalloc/kthread/...
// without touching any other module.
#pragma once

#include "portability/file.h"
#include "portability/log.h"
#include "portability/memory.h"
#include "portability/thread.h"

#include <cstdint>

namespace kml {

// Global library state; call once before using any other KML facility.
// Idempotent. Returns false only if the backend failed to initialize.
bool kml_lib_init();

// Tear down global state (flushes logs, releases the reservation arena).
void kml_lib_shutdown();

// --- Floating-point unit guards -------------------------------------------
//
// Most kernels disable FP in kernel context; code must bracket FP regions
// with kernel_fpu_begin()/kernel_fpu_end() (§3.1). In user space these are
// no-ops, but KML *counts* them so tests and benchmarks can verify that the
// number of guarded regions stays minimal (each guard forces an FP-register
// save/restore in kernel deployments).
void kml_fpu_begin();
void kml_fpu_end();

// Number of kml_fpu_begin() calls since init (monotonic).
std::uint64_t kml_fpu_region_count();

// True while inside a begin/end bracket on this thread. Debug aid: matrix
// FP kernels assert this in debug builds to catch unguarded FP use that
// would crash a kernel build.
bool kml_fpu_in_region();

// Reset the region counter (benchmark hygiene).
void kml_fpu_reset_stats();

// --- Monotonic clock ------------------------------------------------------
//
// Nanoseconds from an arbitrary monotonic epoch. The one wall-clock source
// KML modules may use directly (a kernel backend maps it to ktime_get_ns());
// latency spans, watchdog heartbeats, and engine timing all read this so a
// backend swap retimes everything at once. Integer-only, safe outside FPU
// regions.
std::uint64_t kml_now_ns();

}  // namespace kml
