#include "portability/trace_hook.h"

namespace kml {

namespace detail {
std::atomic<kml_trace_hook_fn> g_trace_hook{nullptr};
}  // namespace detail

void kml_set_trace_hook(kml_trace_hook_fn fn) {
  detail::g_trace_hook.store(fn, std::memory_order_release);
}

kml_trace_hook_fn kml_get_trace_hook() {
  return detail::g_trace_hook.load(std::memory_order_acquire);
}

}  // namespace kml
