#include "portability/thread.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>

namespace kml {

struct KmlThread {
  std::thread impl;
};

KmlThread* kml_thread_create(kml_thread_fn fn, void* arg, const char* name) {
  (void)name;  // kernel backend would pass it to kthread_run
  if (fn == nullptr) return nullptr;
  auto* t = new (std::nothrow) KmlThread;
  if (t == nullptr) return nullptr;
  try {
    t->impl = std::thread(fn, arg);
  } catch (const std::system_error&) {
    delete t;
    return nullptr;
  }
  return t;
}

void kml_thread_join(KmlThread* thread) {
  if (thread == nullptr) return;
  if (thread->impl.joinable()) thread->impl.join();
  delete thread;
}

void kml_thread_yield() { std::this_thread::yield(); }

void kml_sleep_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::uint64_t kml_thread_self() {
  return static_cast<std::uint64_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

unsigned kml_num_cpus() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

namespace {
std::atomic<std::int64_t>* as_std(KmlAtomic64* a) {
  return reinterpret_cast<std::atomic<std::int64_t>*>(
      const_cast<std::int64_t*>(&a->raw));
}
const std::atomic<std::int64_t>* as_std(const KmlAtomic64* a) {
  return reinterpret_cast<const std::atomic<std::int64_t>*>(
      const_cast<const std::int64_t*>(&a->raw));
}
static_assert(sizeof(std::atomic<std::int64_t>) == sizeof(std::int64_t));
}  // namespace

std::int64_t kml_atomic_load64(const KmlAtomic64* a) {
  return as_std(a)->load(std::memory_order_acquire);
}

void kml_atomic_store64(KmlAtomic64* a, std::int64_t value) {
  as_std(a)->store(value, std::memory_order_release);
}

std::int64_t kml_atomic_add64(KmlAtomic64* a, std::int64_t delta) {
  return as_std(a)->fetch_add(delta, std::memory_order_acq_rel) + delta;
}

bool kml_atomic_cas64(KmlAtomic64* a, std::int64_t expected,
                      std::int64_t desired) {
  return as_std(a)->compare_exchange_strong(expected, desired,
                                            std::memory_order_acq_rel);
}

}  // namespace kml
