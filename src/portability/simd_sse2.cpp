// simd_sse2.cpp — SSE2 tier (x86-64 baseline, no extra compile flags).
// 2 double / 4 float lanes. The only file besides simd_avx2.cpp allowed to
// include an intrinsics header (enforced by tests/repo_hygiene.sh).

#include "portability/simd_internal.h"

#if KML_SIMD_ENABLED && defined(__x86_64__)

#include <emmintrin.h>

#include <cassert>
#include <cstring>

#include "portability/simd_vec.inl.h"

namespace kml::simd_detail {
namespace {

struct VecD2 {
  using Elem = double;
  using Reg = __m128d;
  using IReg = __m128i;
  static constexpr int kLanes = 2;
  static constexpr int kFullMask = 0x3;

  static Reg load(const double* p) { return _mm_loadu_pd(p); }
  static void store(double* p, Reg v) { _mm_storeu_pd(p, v); }
  static Reg set1(double x) { return _mm_set1_pd(x); }
  static Reg zero() { return _mm_setzero_pd(); }
  static Reg add(Reg a, Reg b) { return _mm_add_pd(a, b); }
  static Reg sub(Reg a, Reg b) { return _mm_sub_pd(a, b); }
  static Reg mul(Reg a, Reg b) { return _mm_mul_pd(a, b); }
  static Reg div(Reg a, Reg b) { return _mm_div_pd(a, b); }
  static Reg gather_rows(const double* p, long stride) {
    return _mm_set_pd(p[stride], p[0]);
  }

  static Reg cmp_ord(Reg x) { return _mm_cmpord_pd(x, x); }
  static Reg cmp_ge(Reg a, Reg b) { return _mm_cmpge_pd(a, b); }
  static Reg cmp_le(Reg a, Reg b) { return _mm_cmple_pd(a, b); }
  static Reg cmp_lt(Reg a, Reg b) { return _mm_cmplt_pd(a, b); }
  static Reg and_(Reg a, Reg b) { return _mm_and_pd(a, b); }
  static int movemask(Reg m) { return _mm_movemask_pd(m); }
  // mask ? b : a — masks are all-ones/all-zeros lanes from the cmp ops, so
  // the and/andnot/or blend is exact (SSE2 has no blendv).
  static Reg blendv(Reg a, Reg b, Reg mask) {
    return _mm_or_pd(_mm_and_pd(mask, b), _mm_andnot_pd(mask, a));
  }

  static Reg sign_mask() { return _mm_set1_pd(-0.0); }
  static Reg abs(Reg x) { return _mm_andnot_pd(sign_mask(), x); }
  static Reg neg(Reg x) { return _mm_xor_pd(x, sign_mask()); }
  static Reg neg_where(Reg x, Reg mask) {
    return _mm_xor_pd(x, _mm_and_pd(mask, sign_mask()));
  }

  // Lanes 0..1 of the i32 results land in the low half of the register.
  static IReg trunc_i32(Reg x) { return _mm_cvttpd_epi32(x); }
  static Reg i32_to_f64(IReg k) { return _mm_cvtepi32_pd(k); }
  static Reg pow2k(IReg k) {
    // Sign-extend the two i32 lanes to i64 (no cvtepi32_epi64 in SSE2),
    // then bit-construct the double exponent (k+1023) << 52.
    const __m128i sign = _mm_srai_epi32(k, 31);
    const __m128i k64 = _mm_unpacklo_epi32(k, sign);
    const __m128i biased = _mm_add_epi64(k64, _mm_set1_epi64x(1023));
    return _mm_castsi128_pd(_mm_slli_epi64(biased, 52));
  }
};

struct VecF4 {
  using Elem = float;
  using Reg = __m128;
  static constexpr int kLanes = 4;

  static Reg load(const float* p) { return _mm_loadu_ps(p); }
  static void store(float* p, Reg v) { _mm_storeu_ps(p, v); }
  static Reg set1(float x) { return _mm_set1_ps(x); }
  static Reg zero() { return _mm_setzero_ps(); }
  static Reg add(Reg a, Reg b) { return _mm_add_ps(a, b); }
  static Reg sub(Reg a, Reg b) { return _mm_sub_ps(a, b); }
  static Reg mul(Reg a, Reg b) { return _mm_mul_ps(a, b); }
  static Reg gather_rows(const float* p, long stride) {
    return _mm_set_ps(p[3 * stride], p[2 * stride], p[stride], p[0]);
  }
};

// int8 x int8 -> int32 GEMM, 8 output columns per step. SSE2 has no byte
// multiply, so products are formed at 16 bit — exact, since |a*b| <= 2^14 —
// then sign-extended to the int32 accumulators.
void gemm_s8_sse2(const std::int8_t* a, int lda, const std::int8_t* b,
                  int ldb, std::int32_t* out, int ldo, int m, int n, int k) {
  assert(k <= 65536);
  for (int i = 0; i < m; ++i) {
    const std::int8_t* arow = a + static_cast<std::size_t>(i) * lda;
    std::int32_t* orow = out + static_cast<std::size_t>(i) * ldo;
    int j = 0;
    for (; j + 8 <= n; j += 8) {
      __m128i acc0 = _mm_setzero_si128();
      __m128i acc1 = _mm_setzero_si128();
      for (int kk = 0; kk < k; ++kk) {
        const __m128i b8 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(
            b + static_cast<std::size_t>(kk) * ldb + j));
        // Duplicate each byte into both halves of a 16-bit lane, then
        // arithmetic-shift right 8: sign-extended i8 -> i16.
        const __m128i b16 = _mm_srai_epi16(_mm_unpacklo_epi8(b8, b8), 8);
        const __m128i a16 = _mm_set1_epi16(static_cast<short>(arow[kk]));
        const __m128i prod = _mm_mullo_epi16(a16, b16);
        const __m128i psign = _mm_srai_epi16(prod, 15);
        acc0 = _mm_add_epi32(acc0, _mm_unpacklo_epi16(prod, psign));
        acc1 = _mm_add_epi32(acc1, _mm_unpackhi_epi16(prod, psign));
      }
      _mm_storeu_si128(reinterpret_cast<__m128i*>(orow + j), acc0);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(orow + j + 4), acc1);
    }
    for (; j < n; ++j) {
      std::int32_t acc = 0;
      for (int kk = 0; kk < k; ++kk) {
        acc += static_cast<std::int32_t>(arow[kk]) *
               static_cast<std::int32_t>(
                   b[static_cast<std::size_t>(kk) * ldb + j]);
      }
      orow[j] = acc;
    }
  }
}

}  // namespace

const KernelTable& sse2_table() {
  static const KernelTable t = {
      &matmul_body<VecD2>,    &matmul_body<VecF4>,
      &matmul_bt_body<VecD2>, &matmul_bt_body<VecF4>,
      &matmul_at_body<VecD2>, &matmul_at_body<VecF4>,
      &elementwise_body<VecD2, EwOp::kAdd>,
      &elementwise_body<VecD2, EwOp::kSub>,
      &elementwise_body<VecD2, EwOp::kMul>,
      &axpy_body<VecD2>,      &scale_body<VecD2>,
      &elementwise_body<VecF4, EwOp::kAdd>,
      &elementwise_body<VecF4, EwOp::kSub>,
      &elementwise_body<VecF4, EwOp::kMul>,
      &exp_span_body<VecD2>,  &sigmoid_span_body<VecD2>,
      &tanh_span_body<VecD2>, &gemm_s8_sse2,
  };
  return t;
}

}  // namespace kml::simd_detail

#endif  // KML_SIMD_ENABLED && defined(__x86_64__)
