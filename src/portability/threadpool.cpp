#include "portability/threadpool.h"

#include "portability/log.h"
#include "portability/thread.h"
#include "portability/trace_hook.h"

#include <cstdlib>

namespace kml {

namespace {

constexpr unsigned kMaxWorkers = 64;  // pool threads (excluding the caller)

// Idle backoff: brief hot spin (a job burst keeps threads here), then
// sched-yield — nearly free, and the only viable wait when the pool is
// oversubscribed on few CPUs — then a real sleep once the pool has clearly
// gone quiescent. Sleeping too early is the trap: a 1 ms sleep in the wake
// path turns every dispatch into a millisecond, which is death by latency
// for per-minibatch dispatches.
constexpr unsigned kIdleSpin = 64;
constexpr unsigned kIdleYield = 65536;

inline void idle_backoff(unsigned idle) {
  if (idle > kIdleYield) {
    kml_sleep_ms(1);
  } else if (idle > kIdleSpin) {
    kml_thread_yield();
  }
}

// One published job. Fields are written under the submit lock and published
// to workers by the release-store of epoch; workers acquire-load epoch
// before reading them.
struct Job {
  kml_parallel_fn fn = nullptr;
  void* arg = nullptr;
  long n = 0;
  long chunk = 0;    // indices per worker slot (static partition)
  int workers = 0;   // participating worker slots, including the caller
};

struct Pool {
  KmlAtomic64 submit_lock;   // 0 free / 1 held; CAS-acquired
  KmlAtomic64 epoch;         // bumped per job; workers wait on it
  KmlAtomic64 done;          // epoch acknowledgments by pool workers. EVERY
                             // spawned worker acks every epoch, even when
                             // its slot has no chunk: the ack is what lets
                             // the submitter reuse the job slot — without
                             // it, a descheduled non-participant could
                             // still be reading job fields when the next
                             // submission overwrites them (and might then
                             // run a chunk of the wrong job).
  KmlAtomic64 stop;          // 1 = workers must exit
  KmlAtomic64 target;        // desired total threads; 0 = unresolved.
                             // Lock-free readable: kml_pool_threads() may be
                             // called from inside a worker chunk while the
                             // submitter holds the lock.
  Job job;
  KmlThread* threads[kMaxWorkers];
  unsigned spawned = 0;      // live pool workers (excluding the caller)
};

Pool g_pool;  // zero-initialized static storage

// True while the current thread is executing a pool chunk: nested
// parallel_for calls from kernel code (a worker's matmul calling
// parallel_for again) run serially inline instead of deadlocking on the
// pool. A kernel backend would use a per-cpu flag.
thread_local bool t_in_worker = false;

struct WorkerArg {
  int slot;  // this worker's static slot (1..spawned; caller is 0)
  // Epoch at spawn time, recorded BEFORE the spawning submission publishes
  // its job. A fresh load inside the worker would race the publisher: a
  // worker first scheduled after the epoch bump would adopt the new epoch
  // as "seen", skip the very job that spawned it, and deadlock the waiting
  // caller.
  std::int64_t start_epoch;
};
WorkerArg g_worker_args[kMaxWorkers];

// Run this slot's chunk of the current job, if the slot participates.
void run_chunk(const Job& job, int slot) {
  const long begin = static_cast<long>(slot) * job.chunk;
  if (begin >= job.n) return;
  long end = begin + job.chunk;
  if (end > job.n) end = job.n;
  job.fn(job.arg, begin, end, slot);
}

void worker_main(void* arg) {
  const int slot = static_cast<WorkerArg*>(arg)->slot;
  t_in_worker = true;  // a worker's own kernels never re-enter the pool
  std::int64_t seen = static_cast<WorkerArg*>(arg)->start_epoch;
  unsigned idle = 0;
  for (;;) {
    const std::int64_t e = kml_atomic_load64(&g_pool.epoch);
    if (kml_atomic_load64(&g_pool.stop) != 0) return;
    if (e == seen) {
      idle_backoff(++idle);
      continue;
    }
    seen = e;
    idle = 0;
    if (slot < g_pool.job.workers) {
      run_chunk(g_pool.job, slot);
    }
    kml_atomic_add64(&g_pool.done, 1);  // ack even with no chunk (see Pool)
  }
}

unsigned clamp_threads(long v) {
  if (v < 1) return 1;
  if (v > static_cast<long>(kMaxWorkers)) return kMaxWorkers;
  return static_cast<unsigned>(v);
}

// Lock-free lazy resolution of the thread-count knob: default is hardware
// concurrency, overridable by the KML_THREADS environment variable. Racing
// resolvers compute the same value; first CAS wins.
unsigned resolve_target() {
  std::int64_t t = kml_atomic_load64(&g_pool.target);
  if (t > 0) return static_cast<unsigned>(t);
  unsigned n = kml_num_cpus();
  if (const char* env = std::getenv("KML_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) n = clamp_threads(v);
  }
  n = clamp_threads(static_cast<long>(n));
  kml_atomic_cas64(&g_pool.target, 0, static_cast<std::int64_t>(n));
  return static_cast<unsigned>(kml_atomic_load64(&g_pool.target));
}

// Caller must hold the submit lock.
void join_workers_locked() {
  if (g_pool.spawned == 0) return;
  kml_atomic_store64(&g_pool.stop, 1);
  // Wake sleepers: epoch movement is what spinners watch. Workers re-check
  // stop immediately after every epoch load, so none runs a stale job.
  kml_atomic_add64(&g_pool.epoch, 1);
  for (unsigned i = 0; i < g_pool.spawned; ++i) {
    kml_thread_join(g_pool.threads[i]);
    g_pool.threads[i] = nullptr;
  }
  g_pool.spawned = 0;
  kml_atomic_store64(&g_pool.stop, 0);
}

// Caller must hold the submit lock. Returns the usable worker-slot count
// (spawned + 1); short spawns degrade to fewer slots rather than failing.
unsigned ensure_workers_locked(unsigned target) {
  const unsigned want = target - 1;
  if (g_pool.spawned == want) return g_pool.spawned + 1;
  join_workers_locked();
  const std::int64_t base_epoch = kml_atomic_load64(&g_pool.epoch);
  for (unsigned i = 0; i < want; ++i) {
    g_worker_args[i].slot = static_cast<int>(i) + 1;
    g_worker_args[i].start_epoch = base_epoch;
    g_pool.threads[i] =
        kml_thread_create(&worker_main, &g_worker_args[i], "kml-pool");
    if (g_pool.threads[i] == nullptr) {
      KML_WARN("threadpool: spawned %u/%u workers; degrading", i, want);
      break;
    }
    ++g_pool.spawned;
  }
  return g_pool.spawned + 1;
}

bool try_lock_submit() {
  return kml_atomic_cas64(&g_pool.submit_lock, 0, 1);
}

void unlock_submit() { kml_atomic_store64(&g_pool.submit_lock, 0); }

inline long chunks_for(long n, long grain) {
  if (grain < 1) grain = 1;
  return (n + grain - 1) / grain;
}

}  // namespace

void kml_pool_set_threads(unsigned n) {
  // Serialize against in-flight jobs and resizes. Spin: resizes are rare
  // control-plane operations.
  while (!try_lock_submit()) kml_thread_yield();
  const unsigned resolved =
      n == 0 ? clamp_threads(static_cast<long>(kml_num_cpus()))
             : clamp_threads(static_cast<long>(n));
  kml_atomic_store64(&g_pool.target, static_cast<std::int64_t>(resolved));
  // Shrinking to 1 parks the machine immediately; growth is lazy (the next
  // parallel_for spawns what it needs).
  if (resolved == 1) join_workers_locked();
  unlock_submit();
}

unsigned kml_pool_threads() { return resolve_target(); }

unsigned kml_pool_workers_for(long n, long grain) {
  if (n <= 0) return 1;
  const long chunks = chunks_for(n, grain);
  const long t = static_cast<long>(resolve_target());
  const long w = chunks < t ? chunks : t;
  return w < 1 ? 1u : static_cast<unsigned>(w);
}

void kml_pool_shutdown() {
  while (!try_lock_submit()) kml_thread_yield();
  join_workers_locked();
  unlock_submit();
}

void kml_parallel_for(long n, long grain, kml_parallel_fn fn, void* arg) {
  if (n <= 0 || fn == nullptr) return;
  // Serial fast paths: single-chunk loops, nested calls from inside a
  // worker, a 1-thread pool, and contended submissions all run inline —
  // static chunking makes the results identical either way.
  if (t_in_worker) {
    fn(arg, 0, n, 0);
    return;
  }
  const long chunks = chunks_for(n, grain);
  if (chunks <= 1 || resolve_target() <= 1 || !try_lock_submit()) {
    fn(arg, 0, n, 0);
    return;
  }

  const unsigned slots = ensure_workers_locked(resolve_target());
  const long workers = chunks < static_cast<long>(slots)
                           ? chunks
                           : static_cast<long>(slots);
  if (workers <= 1) {
    unlock_submit();
    fn(arg, 0, n, 0);
    return;
  }

  Job& job = g_pool.job;
  job.fn = fn;
  job.arg = arg;
  job.n = n;
  job.chunk = (n + workers - 1) / workers;
  job.workers = static_cast<int>(workers);
  kml_atomic_store64(&g_pool.done, 0);
  const std::int64_t epoch =
      kml_atomic_add64(&g_pool.epoch, 1);  // release: publishes the job
  kml_trace_emit(kTraceEvPoolDispatch, static_cast<std::uint64_t>(epoch),
                 static_cast<std::uint64_t>(workers));

  // The caller is worker slot 0.
  t_in_worker = true;
  run_chunk(job, 0);
  t_in_worker = false;

  // Wait for EVERY spawned worker to acknowledge the epoch — participants
  // after running their chunk, the rest immediately — so the job slot is
  // quiescent before the next submission may rewrite it.
  const std::int64_t need = static_cast<std::int64_t>(g_pool.spawned);
  unsigned idle = 0;
  while (kml_atomic_load64(&g_pool.done) != need) {
    idle_backoff(++idle);
  }
  unlock_submit();
}

}  // namespace kml
