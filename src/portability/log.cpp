#include "portability/log.h"

#include <atomic>
#include <cstdio>

namespace kml {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<kml_log_sink_fn> g_sink{nullptr};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DBG";
    case LogLevel::kInfo: return "INF";
    case LogLevel::kWarn: return "WRN";
    case LogLevel::kError: return "ERR";
  }
  return "???";
}

}  // namespace

void kml_log(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  char body[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(body, sizeof(body), fmt, ap);
  va_end(ap);

  kml_log_sink_fn sink = g_sink.load(std::memory_order_acquire);
  if (sink != nullptr) {
    sink(level, body);
    return;
  }
  std::fprintf(stderr, "[kml:%s] %s\n", level_tag(level), body);
}

void kml_set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel kml_get_log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void kml_set_log_sink(kml_log_sink_fn sink) {
  g_sink.store(sink, std::memory_order_release);
}

}  // namespace kml
