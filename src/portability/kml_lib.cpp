#include "portability/kml_lib.h"

#include "portability/threadpool.h"

#include <atomic>
#include <chrono>

namespace kml {
namespace {

std::atomic<bool> g_initialized{false};
std::atomic<std::uint64_t> g_fpu_regions{0};
thread_local int t_fpu_depth = 0;

}  // namespace

bool kml_lib_init() {
  g_initialized.store(true, std::memory_order_release);
  return true;
}

void kml_lib_shutdown() {
  kml_pool_shutdown();
  kml_mem_release();
  g_initialized.store(false, std::memory_order_release);
}

void kml_fpu_begin() {
  if (t_fpu_depth++ == 0) {
    g_fpu_regions.fetch_add(1, std::memory_order_relaxed);
  }
  // Kernel backend: kernel_fpu_begin() — saves FP registers, disables
  // preemption. Userspace: counting only.
}

void kml_fpu_end() {
  if (t_fpu_depth > 0) --t_fpu_depth;
}

std::uint64_t kml_fpu_region_count() {
  return g_fpu_regions.load(std::memory_order_relaxed);
}

bool kml_fpu_in_region() { return t_fpu_depth > 0; }

void kml_fpu_reset_stats() {
  g_fpu_regions.store(0, std::memory_order_relaxed);
}

std::uint64_t kml_now_ns() {
  // Kernel backend: ktime_get_ns(). Userspace: steady_clock.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace kml
