// threadpool.h — fixed-size worker pool for deterministic data parallelism.
//
// KML's compute kernels (matmul, batched inference, minibatch training) are
// embarrassingly parallel across output rows, but a kernel deployment cannot
// spawn threads ad hoc: thread creation is expensive and the §3.2 sizing
// advice ("leave at least one available CPU core") wants one fixed, visible
// set of workers. This pool is built *only* on the portability seams —
// kml_thread_create/join/yield/sleep and the kml_atomic_* operations — so a
// kernel backend maps the workers onto kthreads without touching callers.
//
// Determinism contract: parallel_for(n, grain, fn) partitions [0, n) into
// one contiguous chunk per worker with *static* chunking — chunk boundaries
// depend only on (n, grain, worker count), never on timing. Each index is
// visited by exactly one worker, so any kernel whose per-index work is
// independent (every matmul output element, every activation element)
// produces bit-identical results at ANY worker count. Kernels that *reduce*
// across indices (gradient sums) are deterministic per worker count when
// the caller reduces per-chunk partials in worker-index order.
//
// Scheduling contract: jobs are serviced by the calling thread (worker 0)
// plus up to threads-1 pool workers. Nested parallel_for calls from inside
// a worker run serially inline (no deadlock, same results); concurrent
// submissions from distinct threads are serialized by a try-lock — the
// loser simply runs its loop serially inline, which is always correct.
#pragma once

#include <cstddef>
#include <utility>

namespace kml {

// Chunk body: process indices [begin, end); `worker` is the chunk's static
// worker slot in [0, workers) — stable input for per-worker scratch.
using kml_parallel_fn = void (*)(void* arg, long begin, long end, int worker);

// Set the pool size. 0 = hardware concurrency (kml_num_cpus), 1 = fully
// serial (no workers are ever spawned or woken). Takes effect on the next
// parallel_for; safe to call at any time from any thread not currently
// inside a parallel region. The KML_THREADS environment variable, when set,
// provides the initial value.
void kml_pool_set_threads(unsigned n);

// Current target worker count (including the calling thread).
unsigned kml_pool_threads();

// Workers a parallel_for(n, grain, ...) would use right now: the static
// chunk count min(kml_pool_threads(), ceil(n / grain)), at least 1. Callers
// that pre-size per-worker scratch (the zero-allocation training path) key
// off this.
unsigned kml_pool_workers_for(long n, long grain);

// Join and destroy all pool workers (kml_lib_shutdown calls this). The next
// parallel_for respawns them on demand.
void kml_pool_shutdown();

// Statically partition [0, n) into min(threads, ceil(n/grain)) contiguous
// chunks and run fn on each, one chunk per worker, concurrently. Blocks
// until every chunk completed. grain is the minimum indices per chunk
// (>= 1) — the oversubscription guard for small loops. n <= 0 is a no-op.
void kml_parallel_for(long n, long grain, kml_parallel_fn fn, void* arg);

// C++ convenience wrapper: f(begin, end, worker).
template <typename F>
void parallel_for(long n, long grain, F&& f) {
  using Fn = std::remove_reference_t<F>;
  kml_parallel_for(
      n, grain,
      [](void* arg, long begin, long end, int worker) {
        (*static_cast<Fn*>(arg))(begin, end, worker);
      },
      const_cast<void*>(static_cast<const void*>(&f)));
}

}  // namespace kml
