// log.h — part (iii) of the KML development API: logging.
//
// printk in the kernel, stderr in user space. Sinks are swappable so tests
// can capture output.
#pragma once

#include <cstdarg>

namespace kml {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// printf-style logging at `level`; dropped when below the current level.
void kml_log(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void kml_set_log_level(LogLevel level);
LogLevel kml_get_log_level();

// Redirect output. `sink(level, formatted_line)` is called for each kept
// message; pass nullptr to restore the default (stderr) sink.
using kml_log_sink_fn = void (*)(LogLevel level, const char* line);
void kml_set_log_sink(kml_log_sink_fn sink);

#define KML_DEBUG(...) ::kml::kml_log(::kml::LogLevel::kDebug, __VA_ARGS__)
#define KML_INFO(...) ::kml::kml_log(::kml::LogLevel::kInfo, __VA_ARGS__)
#define KML_WARN(...) ::kml::kml_log(::kml::LogLevel::kWarn, __VA_ARGS__)
#define KML_ERROR(...) ::kml::kml_log(::kml::LogLevel::kError, __VA_ARGS__)

}  // namespace kml
