#include "portability/epoch.h"

#include "portability/thread.h"
#include "portability/trace_hook.h"

#include <cassert>
#include <new>

namespace kml {
namespace {

// One cacheline per reader slot: the pinned epoch (0 = quiescent). Slots
// are claimed once per thread and never released (flight-recorder model) —
// a dead thread's slot reads 0 forever and costs one load per reclaim scan.
struct alignas(64) ReaderSlot {
  KmlAtomic64 pinned{0};
};

KmlAtomic64 g_global_epoch{1};
ReaderSlot g_slots[kEpochMaxThreads];
KmlAtomic64 g_slot_count{0};

// Conservative shared slot for threads past the cap: while `count` readers
// are inside, reclamation is bounded by the epoch recorded when the slot
// went from empty to occupied. Strictly more conservative than a private
// slot — correctness is unaffected, only reclaim latency.
KmlAtomic64 g_overflow_count{0};
KmlAtomic64 g_overflow_epoch{0};

thread_local int t_slot = -1;       // -1 unclaimed, -2 overflow forever
thread_local unsigned t_depth = 0;  // nesting of enter/exit

// Retired-object list, guarded by a CAS spinlock (cold path: retire and
// reclaim only run on writer-side structure swaps).
struct RetiredNode {
  void* obj;
  kml_epoch_deleter_fn del;
  std::int64_t epoch;
  RetiredNode* next;
};

KmlAtomic64 g_list_lock{0};
RetiredNode* g_retired_head = nullptr;  // guarded by g_list_lock

KmlAtomic64 g_deferred{0};
KmlAtomic64 g_retired_total{0};
KmlAtomic64 g_freed_total{0};
KmlAtomic64 g_stalls{0};

void list_lock() {
  while (!kml_atomic_cas64(&g_list_lock, 0, 1)) kml_thread_yield();
}
void list_unlock() { kml_atomic_store64(&g_list_lock, 0); }

int claim_slot() {
  const std::int64_t idx = kml_atomic_add64(&g_slot_count, 1) - 1;
  t_slot = idx < static_cast<std::int64_t>(kEpochMaxThreads)
               ? static_cast<int>(idx)
               : -2;
  return t_slot;
}

}  // namespace

void kml_epoch_enter() {
  if (t_depth++ > 0) return;  // nested: the outermost pin already protects
  int slot = t_slot;
  if (slot == -1) slot = claim_slot();
  if (slot >= 0) {
    // Publish-and-validate: pin the epoch with an RMW (CAS from the known
    // quiescent value — full barrier on every mainstream ISA), then re-read
    // the global epoch. If it moved past the pinned value, a reclaimer may
    // have scanned before the pin was visible; re-pin the newer epoch and
    // check again. Any pointer the reader loads after this loop was
    // published no earlier than the validated epoch, so retire stamps on
    // objects unlinked afterwards can never fall below the pin.
    std::int64_t e = kml_atomic_load64(&g_global_epoch);
    for (;;) {
      std::int64_t prev = kml_atomic_load64(&g_slots[slot].pinned);
      kml_atomic_cas64(&g_slots[slot].pinned, prev, e);
      const std::int64_t now = kml_atomic_load64(&g_global_epoch);
      if (now == e) break;
      e = now;
    }
  } else {
    // Overflow: record the epoch when the shared slot becomes occupied.
    if (kml_atomic_add64(&g_overflow_count, 1) == 1) {
      kml_atomic_store64(&g_overflow_epoch,
                         kml_atomic_load64(&g_global_epoch));
    }
  }
}

void kml_epoch_exit() {
  assert(t_depth > 0 && "kml_epoch_exit without matching enter");
  if (--t_depth > 0) return;
  const int slot = t_slot;
  if (slot >= 0) {
    kml_atomic_store64(&g_slots[slot].pinned, 0);
  } else {
    kml_atomic_add64(&g_overflow_count, -1);
  }
}

bool kml_epoch_in_critical_section() { return t_depth > 0; }

void kml_epoch_retire(void* obj, kml_epoch_deleter_fn del) {
  if (obj == nullptr || del == nullptr) return;
  auto* node = new (std::nothrow) RetiredNode;
  if (node == nullptr) {
    // Allocation failure on the cold path: freeing immediately would be
    // unsafe (readers may hold the object); leaking is the bounded, honest
    // fallback a kernel would also take under OOM during deferred free.
    return;
  }
  node->obj = obj;
  node->del = del;
  node->epoch = kml_atomic_load64(&g_global_epoch);
  list_lock();
  node->next = g_retired_head;
  g_retired_head = node;
  list_unlock();
  kml_atomic_add64(&g_deferred, 1);
  kml_atomic_add64(&g_retired_total, 1);
}

std::uint64_t kml_epoch_reclaim() {
  // Advance first (acq_rel RMW), then scan: every reader pinned before the
  // advance is visible to the scan on the architectures the seams target.
  const std::int64_t new_epoch = kml_atomic_add64(&g_global_epoch, 1);
  std::int64_t min_pinned = new_epoch;
  const std::int64_t claimed = kml_atomic_load64(&g_slot_count);
  const std::int64_t scan =
      claimed < static_cast<std::int64_t>(kEpochMaxThreads)
          ? claimed
          : static_cast<std::int64_t>(kEpochMaxThreads);
  for (std::int64_t i = 0; i < scan; ++i) {
    const std::int64_t e = kml_atomic_load64(&g_slots[i].pinned);
    if (e != 0 && e < min_pinned) min_pinned = e;
  }
  if (kml_atomic_load64(&g_overflow_count) > 0) {
    const std::int64_t e = kml_atomic_load64(&g_overflow_epoch);
    if (e != 0 && e < min_pinned) min_pinned = e;
  }

  // Detach everything strictly older than the oldest pinned reader, then
  // run deleters outside the lock.
  list_lock();
  RetiredNode* keep = nullptr;
  RetiredNode* free_list = nullptr;
  RetiredNode* node = g_retired_head;
  while (node != nullptr) {
    RetiredNode* next = node->next;
    if (node->epoch < min_pinned) {
      node->next = free_list;
      free_list = node;
    } else {
      node->next = keep;
      keep = node;
    }
    node = next;
  }
  g_retired_head = keep;
  list_unlock();

  std::uint64_t freed = 0;
  while (free_list != nullptr) {
    RetiredNode* next = free_list->next;
    free_list->del(free_list->obj);
    delete free_list;
    free_list = next;
    ++freed;
  }
  if (freed > 0) {
    kml_atomic_add64(&g_deferred, -static_cast<std::int64_t>(freed));
    kml_atomic_add64(&g_freed_total, static_cast<std::int64_t>(freed));
  }
  return freed;
}

void kml_epoch_drain() {
  assert(!kml_epoch_in_critical_section() &&
         "kml_epoch_drain would wait on the caller's own pin");
  while (kml_atomic_load64(&g_deferred) > 0) {
    if (kml_epoch_reclaim() == 0 && kml_atomic_load64(&g_deferred) > 0) {
      kml_atomic_add64(&g_stalls, 1);
      kml_trace_emit(kTraceEvEpochStall,
                     static_cast<std::uint64_t>(
                         kml_atomic_load64(&g_global_epoch)),
                     static_cast<std::uint64_t>(
                         kml_atomic_load64(&g_deferred)));
      kml_thread_yield();
    }
  }
}

std::uint64_t kml_epoch_deferred() {
  const std::int64_t v = kml_atomic_load64(&g_deferred);
  return v > 0 ? static_cast<std::uint64_t>(v) : 0;
}

std::uint64_t kml_epoch_retired_total() {
  return static_cast<std::uint64_t>(kml_atomic_load64(&g_retired_total));
}

std::uint64_t kml_epoch_freed_total() {
  return static_cast<std::uint64_t>(kml_atomic_load64(&g_freed_total));
}

std::uint64_t kml_epoch_stalls() {
  return static_cast<std::uint64_t>(kml_atomic_load64(&g_stalls));
}

std::uint64_t kml_epoch_current() {
  return static_cast<std::uint64_t>(kml_atomic_load64(&g_global_epoch));
}

}  // namespace kml
