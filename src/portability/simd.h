// simd.h — runtime-dispatched SIMD kernels behind the portability seam.
//
// The compute kernels (matmul family, elementwise, transcendental spans,
// int8 GEMM) come in one implementation per instruction-set tier; the seam
// probes the CPU once and routes every call through the best tier the host
// supports. Raw intrinsics live ONLY in src/portability/simd_*.cpp
// (repo_hygiene bans <immintrin.h>/<arm_neon.h> everywhere else), so a
// kernel backend — or a non-x86 port — swaps tiers without touching any
// caller.
//
// Determinism contract: every floating-point kernel here is bit-identical
// to the scalar reference at EVERY tier. The vector kernels achieve that by
// vectorizing across independent output elements (output columns for the
// matmul family, elements for the elementwise/transcendental kernels) while
// each element's k-reduction runs strictly ascending in the same
// mul-then-add order as the scalar code. No FMA contraction anywhere: an
// fused multiply-add rounds once where mul+add rounds twice, which would
// fork the result bits between tiers. Integer kernels (int8 GEMM) are exact,
// so any summation order is identical by construction.
//
// Kill switches:
//   * CMake -DKML_SIMD=OFF compiles the ISA translation units out entirely
//     (KML_SIMD_ENABLED=0): detection reports kScalar and the scalar
//     reference kernels are all that exists (tests/simd_off_build.sh).
//   * env KML_SIMD=off pins the scalar tier at runtime.
//   * env KML_SIMD_LEVEL=scalar|sse2|avx2 forces a specific tier (clamped
//     to what the CPU supports).
//   * kml_simd_set_level() does the same programmatically (tests/bench).
#pragma once

#include <cstdint>

namespace kml {

// Dispatch ladder, best-last per architecture. kNeon is declared for the
// ARM port but currently a stub: detection never returns it and requesting
// it clamps to scalar.
enum class SimdLevel : int { kScalar = 0, kSse2 = 1, kAvx2 = 2, kNeon = 3 };

// Best tier this CPU supports (probed once, cached). kScalar when compiled
// with KML_SIMD=OFF or on architectures without a tier implementation.
SimdLevel kml_simd_detected();

// Active tier: detected, clamped by the KML_SIMD / KML_SIMD_LEVEL
// environment knobs and any kml_simd_set_level() override.
SimdLevel kml_simd_level();

// Force a tier (clamped to detected; kNeon clamps to scalar until the NEON
// kernels exist). Returns the effective level. Not safe to call while
// another thread is inside a kernel — flip it between operations only
// (tests and the per-tier bench do exactly that).
SimdLevel kml_simd_set_level(SimdLevel want);

// Name/parse helpers ("scalar", "sse2", "avx2", "neon"). Parsing is
// case-insensitive and returns kScalar for unknown strings — the same
// routine consumes the KML_SIMD_LEVEL environment variable.
const char* kml_simd_level_name(SimdLevel level);
SimdLevel kml_simd_level_from_name(const char* name);

// ---------------------------------------------------------------------------
// Kernels. All operate on a row-major stripe: `m` output rows starting at
// `out`, full `n` columns, reduction depth `k`; `ld*` are row strides in
// elements. Callers (matrix/linalg) keep their own parallel partitioning
// and hand each worker a disjoint stripe — the kernels are oblivious.
// ---------------------------------------------------------------------------

// out(m x n) = a(m x k) * b(k x n). Per element the k loop ascends exactly
// as in matmul_naive — bit-identical at every tier.
void kml_simd_matmul_f64(const double* a, int lda, const double* b, int ldb,
                         double* out, int ldo, int m, int n, int k);
void kml_simd_matmul_f32(const float* a, int lda, const float* b, int ldb,
                         float* out, int ldo, int m, int n, int k);

// out(m x n) = a(m x k) * b(n x k)^T (the backward-pass shape).
void kml_simd_matmul_bt_f64(const double* a, int lda, const double* b,
                            int ldb, double* out, int ldo, int m, int n,
                            int k);
void kml_simd_matmul_bt_f32(const float* a, int lda, const float* b, int ldb,
                            float* out, int ldo, int m, int n, int k);

// out(m x n) = a(k x m)^T * b(k x n) (the weight-gradient shape).
void kml_simd_matmul_at_f64(const double* a, int lda, const double* b,
                            int ldb, double* out, int ldo, int m, int n,
                            int k);
void kml_simd_matmul_at_f32(const float* a, int lda, const float* b, int ldb,
                            float* out, int ldo, int m, int n, int k);

// Elementwise over contiguous spans (bit-identical trivially: one op per
// element, element order is data-independent).
void kml_simd_add_f64(const double* a, const double* b, double* out, long n);
void kml_simd_sub_f64(const double* a, const double* b, double* out, long n);
void kml_simd_mul_f64(const double* a, const double* b, double* out, long n);
void kml_simd_axpy_f64(double alpha, const double* b, double* a, long n);
void kml_simd_scale_f64(double* a, double alpha, long n);
void kml_simd_add_f32(const float* a, const float* b, float* out, long n);
void kml_simd_sub_f32(const float* a, const float* b, float* out, long n);
void kml_simd_mul_f32(const float* a, const float* b, float* out, long n);

// Transcendental spans. The vector body reproduces the scalar algorithm
// (math/approx.cpp) operation for operation, so in-domain elements are
// bit-identical; out-of-domain elements (NaN, |x| beyond the vector-safe
// range) and tails are delegated to `fallback`, which callers point at the
// scalar function (kml_exp / kml_sigmoid / kml_tanh). in == out aliasing is
// allowed; other overlap is not.
using KmlScalarFn = double (*)(double);
void kml_simd_exp_span(const double* in, double* out, long n,
                       KmlScalarFn fallback);
void kml_simd_sigmoid_span(const double* in, double* out, long n,
                           KmlScalarFn fallback);
void kml_simd_tanh_span(const double* in, double* out, long n,
                        KmlScalarFn fallback);

// Quantized GEMM: out(m x n, int32) = a(m x k, int8) * b(k x n, int8).
// Products are at most 2^14 in magnitude, so the int32 accumulator is exact
// for k <= 2^16 (asserted); integer math makes every tier bit-identical
// with no ordering constraint.
void kml_simd_gemm_s8(const std::int8_t* a, int lda, const std::int8_t* b,
                      int ldb, std::int32_t* out, int ldo, int m, int n,
                      int k);

}  // namespace kml
