// simd_avx2.cpp — AVX2 tier. The ONLY translation unit compiled with
// -mavx2 (see src/CMakeLists.txt); nothing here may be inlined elsewhere.
// 4 double / 8 float lanes. No FMA anywhere — fused mul-add rounds once
// where the scalar reference rounds twice, which would break the
// bit-identity contract (simd.h).

#include "portability/simd_internal.h"

#if KML_SIMD_ENABLED && defined(__x86_64__)

#include <immintrin.h>

#include <cassert>
#include <cstring>

#include "portability/simd_vec.inl.h"

namespace kml::simd_detail {
namespace {

struct VecD4 {
  using Elem = double;
  using Reg = __m256d;
  using IReg = __m128i;
  static constexpr int kLanes = 4;
  static constexpr int kFullMask = 0xF;

  static Reg load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, Reg v) { _mm256_storeu_pd(p, v); }
  static Reg set1(double x) { return _mm256_set1_pd(x); }
  static Reg zero() { return _mm256_setzero_pd(); }
  static Reg add(Reg a, Reg b) { return _mm256_add_pd(a, b); }
  static Reg sub(Reg a, Reg b) { return _mm256_sub_pd(a, b); }
  static Reg mul(Reg a, Reg b) { return _mm256_mul_pd(a, b); }
  static Reg div(Reg a, Reg b) { return _mm256_div_pd(a, b); }
  static Reg gather_rows(const double* p, long stride) {
    return _mm256_set_pd(p[3 * stride], p[2 * stride], p[stride], p[0]);
  }

  static Reg cmp_ord(Reg x) { return _mm256_cmp_pd(x, x, _CMP_ORD_Q); }
  static Reg cmp_ge(Reg a, Reg b) { return _mm256_cmp_pd(a, b, _CMP_GE_OQ); }
  static Reg cmp_le(Reg a, Reg b) { return _mm256_cmp_pd(a, b, _CMP_LE_OQ); }
  static Reg cmp_lt(Reg a, Reg b) { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
  static Reg and_(Reg a, Reg b) { return _mm256_and_pd(a, b); }
  static int movemask(Reg m) { return _mm256_movemask_pd(m); }
  static Reg blendv(Reg a, Reg b, Reg mask) {
    return _mm256_blendv_pd(a, b, mask);
  }

  static Reg sign_mask() { return _mm256_set1_pd(-0.0); }
  static Reg abs(Reg x) { return _mm256_andnot_pd(sign_mask(), x); }
  static Reg neg(Reg x) { return _mm256_xor_pd(x, sign_mask()); }
  static Reg neg_where(Reg x, Reg mask) {
    return _mm256_xor_pd(x, _mm256_and_pd(mask, sign_mask()));
  }

  static IReg trunc_i32(Reg x) { return _mm256_cvttpd_epi32(x); }
  static Reg i32_to_f64(IReg k) { return _mm256_cvtepi32_pd(k); }
  static Reg pow2k(IReg k) {
    const __m256i k64 = _mm256_cvtepi32_epi64(k);
    const __m256i biased = _mm256_add_epi64(k64, _mm256_set1_epi64x(1023));
    return _mm256_castsi256_pd(_mm256_slli_epi64(biased, 52));
  }
};

struct VecF8 {
  using Elem = float;
  using Reg = __m256;
  static constexpr int kLanes = 8;

  static Reg load(const float* p) { return _mm256_loadu_ps(p); }
  static void store(float* p, Reg v) { _mm256_storeu_ps(p, v); }
  static Reg set1(float x) { return _mm256_set1_ps(x); }
  static Reg zero() { return _mm256_setzero_ps(); }
  static Reg add(Reg a, Reg b) { return _mm256_add_ps(a, b); }
  static Reg sub(Reg a, Reg b) { return _mm256_sub_ps(a, b); }
  static Reg mul(Reg a, Reg b) { return _mm256_mul_ps(a, b); }
  static Reg gather_rows(const float* p, long stride) {
    return _mm256_set_ps(p[7 * stride], p[6 * stride], p[5 * stride],
                         p[4 * stride], p[3 * stride], p[2 * stride],
                         p[stride], p[0]);
  }
};

// int8 x int8 -> int32 GEMM. Main path: 8 columns per step, b bytes
// sign-extended straight to i32 lanes, 32-bit multiply against the
// broadcast a element. A 4-wide 128-bit path picks up narrow layers (the
// 4-class output head) before the scalar tail.
void gemm_s8_avx2(const std::int8_t* a, int lda, const std::int8_t* b,
                  int ldb, std::int32_t* out, int ldo, int m, int n, int k) {
  assert(k <= 65536);
  for (int i = 0; i < m; ++i) {
    const std::int8_t* arow = a + static_cast<std::size_t>(i) * lda;
    std::int32_t* orow = out + static_cast<std::size_t>(i) * ldo;
    int j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256i acc = _mm256_setzero_si256();
      for (int kk = 0; kk < k; ++kk) {
        const __m128i b8 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(
            b + static_cast<std::size_t>(kk) * ldb + j));
        const __m256i vb = _mm256_cvtepi8_epi32(b8);
        const __m256i va = _mm256_set1_epi32(arow[kk]);
        acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(va, vb));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(orow + j), acc);
    }
    for (; j + 4 <= n; j += 4) {
      __m128i acc = _mm_setzero_si128();
      for (int kk = 0; kk < k; ++kk) {
        std::int32_t four;
        std::memcpy(&four, b + static_cast<std::size_t>(kk) * ldb + j,
                    sizeof(four));
        const __m128i vb = _mm_cvtepi8_epi32(_mm_cvtsi32_si128(four));
        const __m128i va = _mm_set1_epi32(arow[kk]);
        acc = _mm_add_epi32(acc, _mm_mullo_epi32(va, vb));
      }
      _mm_storeu_si128(reinterpret_cast<__m128i*>(orow + j), acc);
    }
    for (; j < n; ++j) {
      std::int32_t acc = 0;
      for (int kk = 0; kk < k; ++kk) {
        acc += static_cast<std::int32_t>(arow[kk]) *
               static_cast<std::int32_t>(
                   b[static_cast<std::size_t>(kk) * ldb + j]);
      }
      orow[j] = acc;
    }
  }
}

}  // namespace

const KernelTable& avx2_table() {
  static const KernelTable t = {
      &matmul_body<VecD4>,    &matmul_body<VecF8>,
      &matmul_bt_body<VecD4>, &matmul_bt_body<VecF8>,
      &matmul_at_body<VecD4>, &matmul_at_body<VecF8>,
      &elementwise_body<VecD4, EwOp::kAdd>,
      &elementwise_body<VecD4, EwOp::kSub>,
      &elementwise_body<VecD4, EwOp::kMul>,
      &axpy_body<VecD4>,      &scale_body<VecD4>,
      &elementwise_body<VecF8, EwOp::kAdd>,
      &elementwise_body<VecF8, EwOp::kSub>,
      &elementwise_body<VecF8, EwOp::kMul>,
      &exp_span_body<VecD4>,  &sigmoid_span_body<VecD4>,
      &tanh_span_body<VecD4>, &gemm_s8_avx2,
  };
  return t;
}

}  // namespace kml::simd_detail

#endif  // KML_SIMD_ENABLED && defined(__x86_64__)
