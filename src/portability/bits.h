// bits.h — small shared integer utilities (lowest layer).
//
// round_up_pow2 exists because the naive doubling loop
//
//   while (p < v) p <<= 1;
//
// never terminates once v exceeds the largest representable power of two
// (p wraps to 0 and spins forever). PR 2 fixed exactly this bug inside
// CircularBuffer; the same latent loop then turned up again in the
// readahead engine's window sizing. One guarded implementation lives here
// so the bug class cannot be re-introduced one copy at a time.
#pragma once

#include <limits>
#include <type_traits>

namespace kml {

// Round `v` up to the next power of two; clamps to the largest power of two
// representable in U (e.g. 2^63 for uint64_t) instead of wrapping. Callers
// whose downstream math cannot absorb the clamp must range-check `v`
// themselves (CircularBuffer's capacity-overflow guard does).
template <typename U>
constexpr U kml_round_up_pow2(U v) {
  static_assert(std::is_unsigned_v<U>,
                "kml_round_up_pow2 operates on unsigned integers");
  constexpr U kMaxPow2 = (std::numeric_limits<U>::max() >> 1) + 1;
  if (v > kMaxPow2) return kMaxPow2;
  U p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace kml
