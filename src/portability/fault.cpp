#include "portability/fault.h"

namespace kml {
namespace detail {

std::atomic<std::uint32_t> g_fault_armed_mask{0};

}  // namespace detail

namespace {

enum class PolicyKind { kNone, kNth, kEvery, kProbability };

struct SitePolicy {
  PolicyKind kind = PolicyKind::kNone;
  std::uint64_t a = 0;  // nth / k
  std::uint64_t b = 0;  // count (nth policy)
  double p = 0.0;
  std::uint64_t rng_state = 0;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> injected{0};
};

SitePolicy g_sites[kNumFaultSites];

SitePolicy& site_ref(FaultSite site) {
  return g_sites[static_cast<unsigned>(site)];
}

void set_armed_bit(FaultSite site, bool armed) {
  const std::uint32_t bit = 1u << static_cast<unsigned>(site);
  if (armed) {
    detail::g_fault_armed_mask.fetch_or(bit, std::memory_order_relaxed);
  } else {
    detail::g_fault_armed_mask.fetch_and(~bit, std::memory_order_relaxed);
  }
}

// splitmix64 — small, seedable, and independent of math/rng.h (portability
// sits below math in the layering).
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

namespace detail {

bool fault_should_fail_slow(FaultSite site) {
  SitePolicy& s = site_ref(site);
  const std::uint64_t hit =
      s.hits.fetch_add(1, std::memory_order_relaxed) + 1;  // 1-based
  bool fail = false;
  switch (s.kind) {
    case PolicyKind::kNone:
      break;
    case PolicyKind::kNth:
      fail = hit >= s.a && (s.b == UINT64_MAX || hit - s.a < s.b);
      break;
    case PolicyKind::kEvery:
      fail = s.a != 0 && hit % s.a == 0;
      break;
    case PolicyKind::kProbability: {
      const std::uint64_t r = splitmix64(s.rng_state);
      fail = static_cast<double>(r >> 11) * 0x1.0p-53 < s.p;
      break;
    }
  }
  if (fail) s.injected.fetch_add(1, std::memory_order_relaxed);
  return fail;
}

}  // namespace detail

namespace {

// Indexed by FaultSite. The static_assert is the compile-time guard that
// every enumerator added to fault.h also gets a name here — an unnamed site
// would otherwise surface as "unknown" only at runtime, deep inside a
// fault-injection log.
constexpr const char* kSiteNames[] = {
    "malloc",           // kMalloc
    "realloc",          // kRealloc
    "arena",            // kArena
    "file_open",        // kFileOpen
    "file_read",        // kFileRead
    "file_write",       // kFileWrite
    "file_rename",      // kFileRename
    "buffer_push",      // kBufferPush
    "train_step",       // kTrainStep
    "wal_append",       // kWalAppend
    "checkpoint_write", // kCheckpointWrite
    "manifest_rename",  // kManifestRename
    "run_flush",        // kRunFlush
};
static_assert(sizeof(kSiteNames) / sizeof(kSiteNames[0]) == kNumFaultSites,
              "every FaultSite enumerator needs a name in kSiteNames");

}  // namespace

const char* kml_fault_site_name(FaultSite site) {
  const unsigned idx = static_cast<unsigned>(site);
  return idx < kNumFaultSites ? kSiteNames[idx] : "unknown";
}

namespace {

void arm(FaultSite site, PolicyKind kind, std::uint64_t a, std::uint64_t b,
         double p, std::uint64_t seed) {
  SitePolicy& s = site_ref(site);
  set_armed_bit(site, false);  // quiesce the hot path during the swap
  s.kind = kind;
  s.a = a;
  s.b = b;
  s.p = p;
  s.rng_state = seed;
  s.hits.store(0, std::memory_order_relaxed);
  s.injected.store(0, std::memory_order_relaxed);
  set_armed_bit(site, true);
}

}  // namespace

void kml_fault_arm_nth(FaultSite site, std::uint64_t nth,
                       std::uint64_t count) {
  arm(site, PolicyKind::kNth, nth == 0 ? 1 : nth, count, 0.0, 0);
}

void kml_fault_arm_every(FaultSite site, std::uint64_t k) {
  arm(site, PolicyKind::kEvery, k == 0 ? 1 : k, 0, 0.0, 0);
}

void kml_fault_arm_probability(FaultSite site, double p, std::uint64_t seed) {
  arm(site, PolicyKind::kProbability, 0, 0, p, seed);
}

void kml_fault_disarm(FaultSite site) {
  set_armed_bit(site, false);
  site_ref(site).kind = PolicyKind::kNone;
}

void kml_fault_disarm_all() {
  for (unsigned i = 0; i < kNumFaultSites; ++i) {
    kml_fault_disarm(static_cast<FaultSite>(i));
  }
}

std::uint64_t kml_fault_hits(FaultSite site) {
  return site_ref(site).hits.load(std::memory_order_relaxed);
}

std::uint64_t kml_fault_injected(FaultSite site) {
  return site_ref(site).injected.load(std::memory_order_relaxed);
}

}  // namespace kml
