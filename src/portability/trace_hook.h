// trace_hook.h — upcall seam for flight-recorder events from the lowest
// layer.
//
// Layering (DESIGN.md §6) forbids portability code from calling into
// kml::observe, yet the flight recorder wants events from inside the thread
// pool (epoch dispatch is the seam that explains every parallel-region
// hiccup). This hook inverts the dependency: the observe layer installs one
// function pointer at startup; portability call sites emit through it.
//
// Cost with no hook installed (KML_OBSERVE=OFF, or before the observe layer
// initializes): one relaxed atomic load and a predicted-not-taken branch —
// no clock read, no stores. The hook itself must honour the same contract
// as the call sites: no locks, no FPU, no allocation.
#pragma once

#include <atomic>
#include <cstdint>

namespace kml {

// Event ids below 16 are reserved for portability-layer emitters; the
// observe layer's EventId enum mirrors them verbatim so one id space covers
// the whole process.
inline constexpr std::uint16_t kTraceEvPoolDispatch = 1;
// Epoch reclamation could not retire garbage because a reader epoch is
// pinned (arg0 = oldest pinned epoch, arg1 = objects still deferred).
inline constexpr std::uint16_t kTraceEvEpochStall = 2;

using kml_trace_hook_fn = void (*)(std::uint16_t event_id, std::uint64_t arg0,
                                   std::uint64_t arg1);

namespace detail {
extern std::atomic<kml_trace_hook_fn> g_trace_hook;
}  // namespace detail

// Install (or clear, with nullptr) the process-wide hook. Last writer wins;
// safe against concurrent emitters.
void kml_set_trace_hook(kml_trace_hook_fn fn);
kml_trace_hook_fn kml_get_trace_hook();

// Hot-path emit, inlined into portability call sites.
inline void kml_trace_emit(std::uint16_t event_id, std::uint64_t arg0,
                           std::uint64_t arg1) {
  if (kml_trace_hook_fn fn =
          detail::g_trace_hook.load(std::memory_order_acquire)) {
    fn(event_id, arg0, arg1);
  }
}

}  // namespace kml
