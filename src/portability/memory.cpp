#include "portability/memory.h"

#include "portability/fault.h"
#include "portability/log.h"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>

namespace kml {
namespace {

constexpr std::size_t kAlign = 16;

// Every accounted block is preceded by a header recording its user size and
// provenance (heap vs. arena) so kml_free can undo the accounting without a
// side table.
struct BlockHeader {
  std::uint64_t size;
  std::uint32_t magic;
  std::uint32_t from_arena;  // 1 if served by the reservation arena
};
static_assert(sizeof(BlockHeader) == kAlign);
constexpr std::uint32_t kMagic = 0x4b4d4c21;  // "KML!"

std::atomic<std::uint64_t> g_current{0};
std::atomic<std::uint64_t> g_peak{0};
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

struct Arena {
  std::byte* base = nullptr;
  std::size_t capacity = 0;
  std::atomic<std::size_t> offset{0};    // bump pointer
  std::atomic<std::uint64_t> live{0};    // live bytes served (debug / stats)
};
Arena g_arena;

void account_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t now =
      g_current.fetch_add(size, std::memory_order_relaxed) + size;
  std::uint64_t peak = g_peak.load(std::memory_order_relaxed);
  while (now > peak &&
         !g_peak.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

void account_free(std::size_t size) {
  g_frees.fetch_add(1, std::memory_order_relaxed);
  g_current.fetch_sub(size, std::memory_order_relaxed);
}

// Try to serve `total` bytes from the arena; nullptr if it does not fit.
void* arena_alloc(std::size_t total) {
  if (g_arena.base == nullptr) return nullptr;
  // Injectable arena exhaustion: exercises the heap-fallback path without
  // actually filling the reservation.
  if (kml_fault_should_fail(FaultSite::kArena)) return nullptr;
  std::size_t old = g_arena.offset.load(std::memory_order_relaxed);
  for (;;) {
    if (old + total > g_arena.capacity) return nullptr;
    if (g_arena.offset.compare_exchange_weak(old, old + total,
                                             std::memory_order_relaxed)) {
      g_arena.live.fetch_add(total, std::memory_order_relaxed);
      return g_arena.base + old;
    }
  }
}

}  // namespace

void* kml_malloc(std::size_t size) {
  if (size == 0) return nullptr;
  if (kml_fault_should_fail(FaultSite::kMalloc)) {
    KML_ERROR("kml_malloc: injected failure (%zu bytes)", size);
    return nullptr;
  }
  const std::size_t padded = (size + kAlign - 1) & ~(kAlign - 1);
  const std::size_t total = padded + sizeof(BlockHeader);

  bool from_arena = true;
  void* raw = arena_alloc(total);
  if (raw == nullptr) {
    from_arena = false;
    raw = std::aligned_alloc(kAlign, total);
    if (raw == nullptr) {
      KML_ERROR("kml_malloc: out of memory (%zu bytes)", size);
      return nullptr;
    }
  }
  auto* hdr = static_cast<BlockHeader*>(raw);
  hdr->size = size;
  hdr->magic = kMagic;
  hdr->from_arena = from_arena ? 1 : 0;
  account_alloc(size);
  return static_cast<std::byte*>(raw) + sizeof(BlockHeader);
}

void* kml_zalloc(std::size_t size) {
  void* p = kml_malloc(size);
  if (p != nullptr) std::memset(p, 0, size);
  return p;
}

void* kml_calloc(std::size_t count, std::size_t size) {
  if (count != 0 && size > std::numeric_limits<std::size_t>::max() / count) {
    return nullptr;
  }
  return kml_zalloc(count * size);
}

void* kml_realloc(void* ptr, std::size_t new_size) {
  if (ptr == nullptr) return kml_malloc(new_size);
  if (new_size == 0) {
    kml_free(ptr);
    return nullptr;
  }
  if (kml_fault_should_fail(FaultSite::kRealloc)) {
    KML_ERROR("kml_realloc: injected failure (%zu bytes)", new_size);
    return nullptr;  // original block stays valid, like real realloc
  }
  auto* hdr = reinterpret_cast<BlockHeader*>(static_cast<std::byte*>(ptr) -
                                             sizeof(BlockHeader));
  assert(hdr->magic == kMagic && "kml_realloc of foreign pointer");
  void* fresh = kml_malloc(new_size);
  if (fresh == nullptr) return nullptr;
  std::memcpy(fresh, ptr,
              hdr->size < new_size ? static_cast<std::size_t>(hdr->size)
                                   : new_size);
  kml_free(ptr);
  return fresh;
}

void kml_free(void* ptr) {
  if (ptr == nullptr) return;
  auto* hdr = reinterpret_cast<BlockHeader*>(static_cast<std::byte*>(ptr) -
                                             sizeof(BlockHeader));
  assert(hdr->magic == kMagic && "kml_free of foreign pointer");
  account_free(static_cast<std::size_t>(hdr->size));
  hdr->magic = 0;
  if (hdr->from_arena != 0) {
    // Arena blocks are reclaimed en masse by kml_mem_release(); just update
    // the live counter so release can verify emptiness.
    const std::size_t padded =
        (static_cast<std::size_t>(hdr->size) + kAlign - 1) & ~(kAlign - 1);
    g_arena.live.fetch_sub(padded + sizeof(BlockHeader),
                           std::memory_order_relaxed);
    return;
  }
  std::free(hdr);
}

MemStats kml_mem_stats() {
  return MemStats{
      .current_bytes = g_current.load(std::memory_order_relaxed),
      .peak_bytes = g_peak.load(std::memory_order_relaxed),
      .total_allocs = g_allocs.load(std::memory_order_relaxed),
      .total_frees = g_frees.load(std::memory_order_relaxed),
      .arena_bytes = g_arena.live.load(std::memory_order_relaxed),
  };
}

void kml_mem_reset_stats() {
  g_peak.store(g_current.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  g_allocs.store(0, std::memory_order_relaxed);
  g_frees.store(0, std::memory_order_relaxed);
}

std::uint64_t kml_mem_usage() {
  return g_current.load(std::memory_order_relaxed);
}

bool kml_mem_reserve(std::size_t bytes) {
  kml_mem_release();
  if (bytes == 0) return true;
  const std::size_t padded = (bytes + kAlign - 1) & ~(kAlign - 1);
  void* base = std::aligned_alloc(kAlign, padded);
  if (base == nullptr) return false;
  g_arena.base = static_cast<std::byte*>(base);
  g_arena.capacity = padded;
  g_arena.offset.store(0, std::memory_order_relaxed);
  g_arena.live.store(0, std::memory_order_relaxed);
  return true;
}

void kml_mem_release() {
  if (g_arena.base == nullptr) return;
  assert(g_arena.live.load(std::memory_order_relaxed) == 0 &&
         "kml_mem_release with live arena allocations");
  std::free(g_arena.base);
  g_arena.base = nullptr;
  g_arena.capacity = 0;
  g_arena.offset.store(0, std::memory_order_relaxed);
}

std::size_t kml_mem_reserved_remaining() {
  if (g_arena.base == nullptr) return 0;
  const std::size_t used = g_arena.offset.load(std::memory_order_relaxed);
  return g_arena.capacity > used ? g_arena.capacity - used : 0;
}

}  // namespace kml
