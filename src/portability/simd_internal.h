// simd_internal.h — shared plumbing between the dispatch layer (simd.cpp)
// and the per-ISA kernel translation units (simd_sse2.cpp, simd_avx2.cpp).
// Nothing here is part of the public seam; include simd.h from the rest of
// the tree.
#pragma once

#include "portability/simd.h"

// CMake always defines this (0 or 1). Defaulting to 1 here makes a broken
// build wiring fail loudly at link time (missing ISA tables) instead of
// silently shipping scalar-only dispatch.
#ifndef KML_SIMD_ENABLED
#define KML_SIMD_ENABLED 1
#endif

namespace kml::simd_detail {

// Constants for the vectorized exp/sigmoid/tanh bodies. These MUST stay
// bit-equal to the scalar algorithm in math/approx.cpp — the per-tier
// bit-identity tests pin the two against drift. portability sits below
// math in the layering, so the values are duplicated here rather than
// included.
inline constexpr double kLn2 = 0.6931471805599453094;
inline constexpr double kInvLn2 = 1.4426950408889634074;
inline constexpr double kExpPoly[10] = {
    1.0 / 362880.0, 1.0 / 40320.0, 1.0 / 5040.0, 1.0 / 720.0, 1.0 / 120.0,
    1.0 / 24.0,     1.0 / 6.0,     0.5,          1.0,         1.0};

// Vector fast-path domains. Outside these, lanes delegate to the scalar
// fallback, which owns the saturation/NaN/subnormal edges.
//
// |x| <= 700 keeps exp's 2^k factor in the normal range ((k+1023)<<52 is
// valid bit construction only for k in [-1022, 1023]; |x| <= 700 bounds
// |k| <= 1011), well inside scalar kml_exp's own ±709.78/−745 cutoffs.
inline constexpr double kExpVecMax = 700.0;
// tanh saturates to ±1 beyond ±20 in the scalar code; the vector body only
// handles the interior, so its exp argument −2|x| stays in [−40, 0].
inline constexpr double kTanhVecMax = 20.0;

// One kernel-pointer table per dispatch tier. kml_simd_set_level() swaps
// which table the public entry points read (a single atomic pointer), so a
// tier change is one store and dispatch is one load + indirect call.
struct KernelTable {
  void (*matmul_f64)(const double*, int, const double*, int, double*, int,
                     int, int, int);
  void (*matmul_f32)(const float*, int, const float*, int, float*, int, int,
                     int, int);
  void (*matmul_bt_f64)(const double*, int, const double*, int, double*, int,
                        int, int, int);
  void (*matmul_bt_f32)(const float*, int, const float*, int, float*, int,
                        int, int, int);
  void (*matmul_at_f64)(const double*, int, const double*, int, double*, int,
                        int, int, int);
  void (*matmul_at_f32)(const float*, int, const float*, int, float*, int,
                        int, int, int);
  void (*add_f64)(const double*, const double*, double*, long);
  void (*sub_f64)(const double*, const double*, double*, long);
  void (*mul_f64)(const double*, const double*, double*, long);
  void (*axpy_f64)(double, const double*, double*, long);
  void (*scale_f64)(double*, double, long);
  void (*add_f32)(const float*, const float*, float*, long);
  void (*sub_f32)(const float*, const float*, float*, long);
  void (*mul_f32)(const float*, const float*, float*, long);
  void (*exp_span)(const double*, double*, long, KmlScalarFn);
  void (*sigmoid_span)(const double*, double*, long, KmlScalarFn);
  void (*tanh_span)(const double*, double*, long, KmlScalarFn);
  void (*gemm_s8)(const std::int8_t*, int, const std::int8_t*, int,
                  std::int32_t*, int, int, int, int);
};

const KernelTable& scalar_table();

#if KML_SIMD_ENABLED && defined(__x86_64__)
const KernelTable& sse2_table();
const KernelTable& avx2_table();
#endif

}  // namespace kml::simd_detail
