// file.h — part (v) of the KML development API: file operations.
//
// Used only by model save/load (the KML model file format, §3.3): a model is
// developed and trained in user space, saved with these calls, and loaded by
// the kernel module through the kernel implementation of the same five
// functions (filp_open/kernel_read/...).
#pragma once

#include <cstddef>
#include <cstdint>

namespace kml {

struct KmlFile;  // opaque

// mode: "r" (read), "w" (create/truncate + write), or "a" (create/append —
// the WAL shape: every write lands at the end of the file). Returns nullptr
// on failure.
KmlFile* kml_fopen(const char* path, const char* mode);

void kml_fclose(KmlFile* file);

// Push buffered writes to stable storage (fflush in user space, the
// vfs_fsync step of a kernel backend). The durability point of a WAL group
// commit. Returns false on failure.
bool kml_fflush(KmlFile* file);

// Read up to `size` bytes; returns bytes read (0 at EOF), or -1 on error.
std::int64_t kml_fread(KmlFile* file, void* buf, std::size_t size);

// Write `size` bytes; returns bytes written or -1 on error.
std::int64_t kml_fwrite(KmlFile* file, const void* buf, std::size_t size);

// Size in bytes of the file at `path`, or -1 if it does not exist.
std::int64_t kml_fsize(const char* path);

// Atomically replace `to` with `from` (rename(2) semantics: `from` must
// exist; `to` is replaced if present). The commit step of crash-safe model
// saves — a reader of `to` sees either the old or the new file, never a
// torn mix. Returns false on failure.
bool kml_frename(const char* from, const char* to);

// Delete the file at `path` (cleanup of abandoned temp files). Returns
// false if nothing was removed.
bool kml_fremove(const char* path);

}  // namespace kml
