#include "portability/checksum.h"

namespace kml {

std::uint32_t kml_crc32(const void* data, std::size_t size) {
  // CRC-32 (IEEE), table generated on first use. The magic-static init is
  // thread-safe in C++11+; after that the path is pure loads.
  static const std::uint32_t* table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

}  // namespace kml
