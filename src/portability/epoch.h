// epoch.h — epoch-based reclamation for lock-free readers (FASTER-style).
//
// MiniKV's concurrent read path needs memtable + run vectors that readers
// can traverse without locks while the writer swaps them out (flush,
// compaction, checkpoint). The classic kernel answer is RCU; the user-space
// storage-engine answer (FASTER, and the MLKV session model built on it) is
// epoch protection: readers pin the current epoch while inside a read-side
// critical section, writers retire replaced objects against the epoch they
// were unlinked in, and a retired object is freed only once every reader
// has moved past that epoch.
//
// Built ONLY on the portability seams (KmlAtomic64 + kml_thread_*), like
// the thread pool, so a kernel backend maps epochs onto its own
// synchronize-and-free machinery without touching callers.
//
// Read side (hot): kml_epoch_enter() publishes the global epoch into the
// calling thread's slot (one acquire load + one release store); exit clears
// it. Re-entrant — nested guards are counted per thread and only the
// outermost pair touches the slot.
//
// Write side (cold): kml_epoch_retire(obj, deleter) parks the object on the
// retired list stamped with the current epoch; kml_epoch_reclaim() advances
// the global epoch and frees everything strictly older than the oldest
// pinned reader epoch. kml_epoch_drain() loops reclaim until the list is
// empty (destructor-time quiescence), emitting a kTraceEvEpochStall trace
// event whenever a pass frees nothing because a reader is pinned.
//
// Thread capacity: kEpochMaxThreads reader slots, claimed once per thread
// for the process lifetime (flight-recorder model). Threads past the cap
// share one conservative overflow slot — correctness is preserved
// (reclamation gets *more* conservative, never less), only reclaim latency
// degrades.
#pragma once

#include <cstdint>

namespace kml {

inline constexpr unsigned kEpochMaxThreads = 64;

using kml_epoch_deleter_fn = void (*)(void* obj);

// --- Read side ---------------------------------------------------------------

// Pin the current global epoch for the calling thread. Re-entrant.
void kml_epoch_enter();

// Unpin (outermost exit publishes quiescence).
void kml_epoch_exit();

// True while the calling thread holds at least one enter().
bool kml_epoch_in_critical_section();

// --- Write side --------------------------------------------------------------

// Park `obj` for deferred destruction; `del(obj)` runs once every reader
// that could still see it has exited. Callers may retire from any thread;
// retire from inside a read-side critical section is allowed (the object is
// stamped with an epoch the caller itself still pins, so it cannot be freed
// under the caller's feet). del must be callable from any thread.
void kml_epoch_retire(void* obj, kml_epoch_deleter_fn del);

// Advance the global epoch and free every retired object no pinned reader
// can still reference. Returns the number of objects freed. Safe from any
// thread; concurrent calls serialize on an internal CAS lock.
std::uint64_t kml_epoch_reclaim();

// Reclaim until nothing is deferred, yielding between passes. Emits a
// kTraceEvEpochStall trace-hook event (and counts a stall) each time a full
// pass frees nothing while objects remain. Must not be called from inside a
// read-side critical section of the calling thread (it would wait on
// itself); asserts in debug builds.
void kml_epoch_drain();

// --- Introspection -----------------------------------------------------------

// Objects currently parked awaiting reclamation.
std::uint64_t kml_epoch_deferred();

// Lifetime totals: objects ever retired / freed, and stalled drain passes.
std::uint64_t kml_epoch_retired_total();
std::uint64_t kml_epoch_freed_total();
std::uint64_t kml_epoch_stalls();

// Current global epoch (monotonic from 1; test/bench visibility).
std::uint64_t kml_epoch_current();

// RAII read-side guard.
class EpochGuard {
 public:
  EpochGuard() { kml_epoch_enter(); }
  ~EpochGuard() { kml_epoch_exit(); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;
};

}  // namespace kml
