#include "portability/file.h"

#include <cstdio>
#include <cstring>
#include <new>
#include <sys/stat.h>

namespace kml {

struct KmlFile {
  std::FILE* fp;
};

KmlFile* kml_fopen(const char* path, const char* mode) {
  if (path == nullptr || mode == nullptr) return nullptr;
  const char* cmode = nullptr;
  if (std::strcmp(mode, "r") == 0) {
    cmode = "rb";
  } else if (std::strcmp(mode, "w") == 0) {
    cmode = "wb";
  } else {
    return nullptr;
  }
  std::FILE* fp = std::fopen(path, cmode);
  if (fp == nullptr) return nullptr;
  auto* f = new (std::nothrow) KmlFile{fp};
  if (f == nullptr) std::fclose(fp);
  return f;
}

void kml_fclose(KmlFile* file) {
  if (file == nullptr) return;
  std::fclose(file->fp);
  delete file;
}

std::int64_t kml_fread(KmlFile* file, void* buf, std::size_t size) {
  if (file == nullptr || buf == nullptr) return -1;
  const std::size_t n = std::fread(buf, 1, size, file->fp);
  if (n < size && std::ferror(file->fp) != 0) return -1;
  return static_cast<std::int64_t>(n);
}

std::int64_t kml_fwrite(KmlFile* file, const void* buf, std::size_t size) {
  if (file == nullptr || buf == nullptr) return -1;
  const std::size_t n = std::fwrite(buf, 1, size, file->fp);
  if (n < size) return -1;
  return static_cast<std::int64_t>(n);
}

std::int64_t kml_fsize(const char* path) {
  struct stat st {};
  if (path == nullptr || ::stat(path, &st) != 0) return -1;
  return static_cast<std::int64_t>(st.st_size);
}

}  // namespace kml
