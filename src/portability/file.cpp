#include "portability/file.h"

#include "portability/fault.h"

#include <cstdio>
#include <cstring>
#include <new>
#include <sys/stat.h>

namespace kml {

struct KmlFile {
  std::FILE* fp;
};

KmlFile* kml_fopen(const char* path, const char* mode) {
  if (path == nullptr || mode == nullptr) return nullptr;
  const char* cmode = nullptr;
  if (std::strcmp(mode, "r") == 0) {
    cmode = "rb";
  } else if (std::strcmp(mode, "w") == 0) {
    cmode = "wb";
  } else if (std::strcmp(mode, "a") == 0) {
    cmode = "ab";
  } else {
    return nullptr;
  }
  if (kml_fault_should_fail(FaultSite::kFileOpen)) return nullptr;
  std::FILE* fp = std::fopen(path, cmode);
  if (fp == nullptr) return nullptr;
  auto* f = new (std::nothrow) KmlFile{fp};
  if (f == nullptr) std::fclose(fp);
  return f;
}

void kml_fclose(KmlFile* file) {
  if (file == nullptr) return;
  std::fclose(file->fp);
  delete file;
}

bool kml_fflush(KmlFile* file) {
  if (file == nullptr) return false;
  return std::fflush(file->fp) == 0;
}

std::int64_t kml_fread(KmlFile* file, void* buf, std::size_t size) {
  if (file == nullptr || buf == nullptr) return -1;
  // Injected short read: deliver (and consume) only half the request, the
  // shape a signal-interrupted or truncated kernel_read produces.
  const std::size_t want =
      kml_fault_should_fail(FaultSite::kFileRead) ? size / 2 : size;
  const std::size_t n = std::fread(buf, 1, want, file->fp);
  if (n < want && std::ferror(file->fp) != 0) return -1;
  return static_cast<std::int64_t>(n);
}

std::int64_t kml_fwrite(KmlFile* file, const void* buf, std::size_t size) {
  if (file == nullptr || buf == nullptr) return -1;
  if (kml_fault_should_fail(FaultSite::kFileWrite)) {
    // Torn write: half the payload reaches the file, then the write fails —
    // the crash-mid-save scenario atomic model saves must survive.
    std::fwrite(buf, 1, size / 2, file->fp);
    return -1;
  }
  const std::size_t n = std::fwrite(buf, 1, size, file->fp);
  if (n < size) return -1;
  return static_cast<std::int64_t>(n);
}

std::int64_t kml_fsize(const char* path) {
  struct stat st {};
  if (path == nullptr || ::stat(path, &st) != 0) return -1;
  return static_cast<std::int64_t>(st.st_size);
}

bool kml_frename(const char* from, const char* to) {
  if (from == nullptr || to == nullptr) return false;
  if (kml_fault_should_fail(FaultSite::kFileRename)) return false;
  return std::rename(from, to) == 0;
}

bool kml_fremove(const char* path) {
  if (path == nullptr) return false;
  return std::remove(path) == 0;
}

}  // namespace kml
