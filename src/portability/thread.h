// thread.h — parts (ii) and (iv) of the KML development API: threading and
// atomic operations.
//
// KML's asynchronous training thread (§3.2) is created through this API so a
// kernel backend can map it onto kthread_run. Atomics wrap std::atomic in
// user space and would wrap atomic64_t in a kernel build; the lock-free
// circular buffer (data/circular_buffer.h) is written purely against these.
#pragma once

#include <cstdint>

namespace kml {

// Opaque thread handle.
struct KmlThread;

using kml_thread_fn = void (*)(void* arg);

// Spawn a thread running fn(arg). Returns nullptr on failure.
KmlThread* kml_thread_create(kml_thread_fn fn, void* arg, const char* name);

// Join and destroy the handle. Safe to call exactly once per handle.
void kml_thread_join(KmlThread* thread);

// Politely give up the CPU.
void kml_thread_yield();

// Sleep for at least `ms` milliseconds.
void kml_sleep_ms(std::uint64_t ms);

// Stable id of the calling thread (for logging).
std::uint64_t kml_thread_self();

// Number of online CPUs; the training thread sizing advice in §3.2
// ("leave at least one available CPU core") keys off this.
unsigned kml_num_cpus();

// --- Atomics ----------------------------------------------------------------

struct KmlAtomic64 {
  // Storage only; manipulate exclusively through the functions below.
  alignas(8) volatile std::int64_t raw;
};

std::int64_t kml_atomic_load64(const KmlAtomic64* a);
void kml_atomic_store64(KmlAtomic64* a, std::int64_t value);
// Returns the post-add value.
std::int64_t kml_atomic_add64(KmlAtomic64* a, std::int64_t delta);
// Compare-and-swap; returns true and installs `desired` iff *a == expected.
bool kml_atomic_cas64(KmlAtomic64* a, std::int64_t expected,
                      std::int64_t desired);

}  // namespace kml
