// memory.h — part (i) of the KML development API: system memory allocation.
//
// All KML allocations flow through kml_malloc/kml_free so that (a) a kernel
// backend can route them to kmalloc/kfree, and (b) KML can account every
// byte it uses — the paper reports exact model footprints (3,916 B init,
// 676 B during inference) which are only measurable with this accounting.
//
// Memory reservation (§3.1): under memory pressure, allocation may stall or
// fail, hurting training latency and accuracy. kml_mem_reserve() carves out
// an up-front arena; subsequent kml_malloc calls are served lock-free from
// the arena (bump allocation) and fall back to the system allocator only
// when the arena is exhausted.
#pragma once

#include <cstddef>
#include <cstdint>

namespace kml {

// Allocate `size` bytes (16-byte aligned). Returns nullptr on failure or
// size == 0. Accounted.
void* kml_malloc(std::size_t size);

// Allocate and zero-fill.
void* kml_zalloc(std::size_t size);

// Allocate `count * size` bytes, zeroed; nullptr on overflow.
void* kml_calloc(std::size_t count, std::size_t size);

// Resize a kml_malloc'd block, preserving contents (like realloc).
void* kml_realloc(void* ptr, std::size_t new_size);

// Release a block from kml_malloc/kml_zalloc/kml_calloc/kml_realloc.
// nullptr is a no-op. Arena blocks are reclaimed when the arena is released.
void kml_free(void* ptr);

// --- Accounting -------------------------------------------------------------

struct MemStats {
  std::uint64_t current_bytes;   // live bytes right now
  std::uint64_t peak_bytes;      // high-water mark since last reset
  std::uint64_t total_allocs;    // cumulative allocation count
  std::uint64_t total_frees;     // cumulative free count
  std::uint64_t arena_bytes;     // bytes currently served from the arena
};

// Snapshot of global allocation statistics.
MemStats kml_mem_stats();

// Reset peak to current and zero the cumulative counters.
void kml_mem_reset_stats();

// Live (not-yet-freed) bytes; shorthand for kml_mem_stats().current_bytes.
std::uint64_t kml_mem_usage();

// --- Reservation arena ------------------------------------------------------

// Reserve `bytes` up front. Replaces any existing arena (which must be
// empty). Returns false if the backing allocation failed.
bool kml_mem_reserve(std::size_t bytes);

// Drop the arena. Outstanding arena pointers become invalid; callers must
// free all arena-served blocks first (enforced in debug builds).
void kml_mem_release();

// Bytes remaining in the arena (0 when no arena is installed).
std::size_t kml_mem_reserved_remaining();

}  // namespace kml
