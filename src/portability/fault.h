// fault.h — deterministic fault-injection registry (robustness harness).
//
// KML lives inside the kernel in deployment (§3.1): allocation fails under
// memory pressure, model files arrive torn, and the I/O path must survive
// every one of those events. This registry makes each such error path
// *testable on demand*: a named fault point is compiled into the error-prone
// call site, and tests arm a deterministic policy against it (fail the Nth
// hit, fail every Kth hit, or fail with a seeded probability).
//
// Cost when disarmed: kml_fault_should_fail() is a single relaxed atomic
// load of a site bitmask — no branch history pollution, no lock, no counter
// update. Arming is a test-side operation and may be slow; the hot path only
// ever pays for the site that is actually armed.
#pragma once

#include <atomic>
#include <cstdint>

namespace kml {

// Every injectable failure site in the codebase. Adding a site is two
// lines: an enumerator here and a kml_fault_should_fail() check at the
// call site (plus a name in fault.cpp).
enum class FaultSite : unsigned {
  kMalloc = 0,   // kml_malloc (and zalloc/calloc through it) returns nullptr
  kRealloc,      // kml_realloc returns nullptr
  kArena,        // reservation arena refuses to serve (forces heap fallback)
  kFileOpen,     // kml_fopen returns nullptr
  kFileRead,     // kml_fread returns a short read
  kFileWrite,    // kml_fwrite writes half the payload, then reports failure
  kFileRename,   // kml_frename fails (atomic-save commit step)
  kBufferPush,   // CircularBuffer::push drops the record as if full
  kTrainStep,    // Engine::train_batch treats the step as invalid (as if the
                 // loss had come back non-finite) — drives the health guard
                 // and flight-recorder causal-chain rehearsals
  // MiniKV durability seams (the kill-and-recover harness arms these):
  kWalAppend,       // WAL group commit tears mid-buffer and fails — the
                    // power-cut-during-fsync shape recovery must survive
  kCheckpointWrite, // checkpoint/manifest payload write fails (torn temp file)
  kManifestRename,  // manifest temp->MANIFEST rename fails (commit step)
  kRunFlush,        // durable run-file write fails during flush/compaction
  kSiteCount,
};

inline constexpr unsigned kNumFaultSites =
    static_cast<unsigned>(FaultSite::kSiteCount);

// Human-readable site name (stable; used in logs and test diagnostics).
const char* kml_fault_site_name(FaultSite site);

namespace detail {
// Bit i set <=> site i has an armed policy. The only state the hot path
// reads.
extern std::atomic<std::uint32_t> g_fault_armed_mask;
// Policy evaluation for an armed site (counter bump + decision).
bool fault_should_fail_slow(FaultSite site);
}  // namespace detail

// Hot-path check, inlined into every fault point. Compiles to one relaxed
// load + mask test when no policy is armed for `site`.
inline bool kml_fault_should_fail(FaultSite site) {
  const std::uint32_t mask =
      detail::g_fault_armed_mask.load(std::memory_order_relaxed);
  if ((mask & (1u << static_cast<unsigned>(site))) == 0) return false;
  return detail::fault_should_fail_slow(site);
}

// --- Arming (test-side) -----------------------------------------------------
//
// Arming calls are safe against concurrent hot-path checks but not against
// each other; tests arm from one thread. Hit counting starts from zero at
// each arm.

// Fail hits [nth, nth+count) (1-based); earlier and later hits succeed.
// count == UINT64_MAX fails every hit from the nth onward.
void kml_fault_arm_nth(FaultSite site, std::uint64_t nth,
                       std::uint64_t count = 1);

// Fail every k-th hit (k >= 1; k == 1 fails every hit).
void kml_fault_arm_every(FaultSite site, std::uint64_t k);

// Fail each hit independently with probability p, from a seeded generator —
// reproducible across runs with the same seed.
void kml_fault_arm_probability(FaultSite site, double p, std::uint64_t seed);

void kml_fault_disarm(FaultSite site);
void kml_fault_disarm_all();

// --- Counters ---------------------------------------------------------------

// Times the site was evaluated while armed (since arming).
std::uint64_t kml_fault_hits(FaultSite site);

// Times a failure was actually injected (since arming; survives disarm so
// tests can assert after the fact).
std::uint64_t kml_fault_injected(FaultSite site);

}  // namespace kml
