// simd.cpp — CPU detection, tier dispatch, and the scalar reference tier.
//
// The scalar kernels here ARE the bit-identity reference: they run the same
// k-ascending mul-then-add per output element as matrix/linalg's naive
// kernels, and the per-ISA vector tiers reproduce them lane for lane. This
// file is deliberately dependency-light (no logging, no observe) so
// tests/simd_off_build.sh can compile and link it standalone.

#include "portability/simd_internal.h"

#include <atomic>
#include <cassert>
#include <cstdlib>

namespace kml {

namespace {

using simd_detail::KernelTable;

// --- scalar reference kernels -----------------------------------------------

template <typename T>
void matmul_scalar(const T* a, int lda, const T* b, int ldb, T* out, int ldo,
                   int m, int n, int k) {
  for (int i = 0; i < m; ++i) {
    const T* arow = a + static_cast<std::size_t>(i) * lda;
    T* orow = out + static_cast<std::size_t>(i) * ldo;
    for (int j = 0; j < n; ++j) {
      T acc{};
      for (int kk = 0; kk < k; ++kk) {
        acc += arow[kk] * b[static_cast<std::size_t>(kk) * ldb + j];
      }
      orow[j] = acc;
    }
  }
}

template <typename T>
void matmul_bt_scalar(const T* a, int lda, const T* b, int ldb, T* out,
                      int ldo, int m, int n, int k) {
  for (int i = 0; i < m; ++i) {
    const T* arow = a + static_cast<std::size_t>(i) * lda;
    T* orow = out + static_cast<std::size_t>(i) * ldo;
    for (int j = 0; j < n; ++j) {
      const T* brow = b + static_cast<std::size_t>(j) * ldb;
      T acc{};
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      orow[j] = acc;
    }
  }
}

template <typename T>
void matmul_at_scalar(const T* a, int lda, const T* b, int ldb, T* out,
                      int ldo, int m, int n, int k) {
  for (int i = 0; i < m; ++i) {
    T* orow = out + static_cast<std::size_t>(i) * ldo;
    for (int j = 0; j < n; ++j) {
      T acc{};
      for (int kk = 0; kk < k; ++kk) {
        acc += a[static_cast<std::size_t>(kk) * lda + i] *
               b[static_cast<std::size_t>(kk) * ldb + j];
      }
      orow[j] = acc;
    }
  }
}

template <typename T>
void add_scalar(const T* a, const T* b, T* out, long n) {
  for (long i = 0; i < n; ++i) out[i] = a[i] + b[i];
}
template <typename T>
void sub_scalar(const T* a, const T* b, T* out, long n) {
  for (long i = 0; i < n; ++i) out[i] = a[i] - b[i];
}
template <typename T>
void mul_scalar(const T* a, const T* b, T* out, long n) {
  for (long i = 0; i < n; ++i) out[i] = a[i] * b[i];
}
void axpy_scalar(double alpha, const double* b, double* a, long n) {
  for (long i = 0; i < n; ++i) a[i] += alpha * b[i];
}
void scale_scalar(double* a, double alpha, long n) {
  for (long i = 0; i < n; ++i) a[i] *= alpha;
}

// The scalar tier of a span is the fallback applied elementwise — by
// construction the reference the vector tiers must match bit for bit.
void span_scalar(const double* in, double* out, long n, KmlScalarFn fn) {
  for (long i = 0; i < n; ++i) out[i] = fn(in[i]);
}

void gemm_s8_scalar(const std::int8_t* a, int lda, const std::int8_t* b,
                    int ldb, std::int32_t* out, int ldo, int m, int n,
                    int k) {
  assert(k <= 65536);  // int32 accumulator exactness bound (see simd.h)
  for (int i = 0; i < m; ++i) {
    const std::int8_t* arow = a + static_cast<std::size_t>(i) * lda;
    std::int32_t* orow = out + static_cast<std::size_t>(i) * ldo;
    for (int j = 0; j < n; ++j) {
      std::int32_t acc = 0;
      for (int kk = 0; kk < k; ++kk) {
        acc += static_cast<std::int32_t>(arow[kk]) *
               static_cast<std::int32_t>(b[static_cast<std::size_t>(kk) * ldb +
                                           j]);
      }
      orow[j] = acc;
    }
  }
}

// --- dispatch state ----------------------------------------------------------

const KernelTable& table_for(SimdLevel level) {
#if KML_SIMD_ENABLED && defined(__x86_64__)
  switch (level) {
    case SimdLevel::kAvx2:
      return simd_detail::avx2_table();
    case SimdLevel::kSse2:
      return simd_detail::sse2_table();
    default:
      break;
  }
#endif
  (void)level;
  return simd_detail::scalar_table();
}

SimdLevel detect_cpu() {
#if KML_SIMD_ENABLED && defined(__x86_64__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdLevel::kSse2;
#endif
  return SimdLevel::kScalar;
}

bool env_is_off(const char* v) {
  if (v == nullptr) return false;
  // "off", "0", "false" in any case.
  auto lower = [](char c) { return c >= 'A' && c <= 'Z' ? c + 32 : c; };
  const char* offs[] = {"off", "0", "false"};
  for (const char* o : offs) {
    const char* p = v;
    const char* q = o;
    while (*p != '\0' && *q != '\0' && lower(*p) == *q) ++p, ++q;
    if (*p == '\0' && *q == '\0') return true;
  }
  return false;
}

SimdLevel clamp_level(SimdLevel want, SimdLevel detected) {
  if (want == SimdLevel::kNeon) return SimdLevel::kScalar;  // stub tier
  return static_cast<int>(want) < static_cast<int>(detected) ? want : detected;
}

struct DispatchState {
  SimdLevel detected = SimdLevel::kScalar;
  std::atomic<const KernelTable*> table{nullptr};

  DispatchState() {
    detected = detect_cpu();
    // env KML_SIMD=off is a hard cap: detection itself reports scalar, so
    // neither KML_SIMD_LEVEL nor kml_simd_set_level can raise it (what the
    // TSan suite relies on).
    if (env_is_off(std::getenv("KML_SIMD"))) detected = SimdLevel::kScalar;
    SimdLevel level = detected;
    if (const char* force = std::getenv("KML_SIMD_LEVEL")) {
      if (*force != '\0') {
        level = clamp_level(kml_simd_level_from_name(force), detected);
      }
    }
    table.store(&table_for(level), std::memory_order_release);
  }
};

DispatchState& state() {
  static DispatchState s;
  return s;
}

}  // namespace

namespace simd_detail {

const KernelTable& scalar_table() {
  static const KernelTable t = {
      &matmul_scalar<double>,    &matmul_scalar<float>,
      &matmul_bt_scalar<double>, &matmul_bt_scalar<float>,
      &matmul_at_scalar<double>, &matmul_at_scalar<float>,
      &add_scalar<double>,       &sub_scalar<double>,
      &mul_scalar<double>,       &axpy_scalar,
      &scale_scalar,             &add_scalar<float>,
      &sub_scalar<float>,        &mul_scalar<float>,
      &span_scalar,              &span_scalar,
      &span_scalar,              &gemm_s8_scalar,
  };
  return t;
}

}  // namespace simd_detail

SimdLevel kml_simd_detected() { return state().detected; }

SimdLevel kml_simd_level() {
  const KernelTable* t = state().table.load(std::memory_order_acquire);
#if KML_SIMD_ENABLED && defined(__x86_64__)
  if (t == &simd_detail::avx2_table()) return SimdLevel::kAvx2;
  if (t == &simd_detail::sse2_table()) return SimdLevel::kSse2;
#endif
  (void)t;
  return SimdLevel::kScalar;
}

SimdLevel kml_simd_set_level(SimdLevel want) {
  DispatchState& s = state();
  const SimdLevel effective = clamp_level(want, s.detected);
  s.table.store(&table_for(effective), std::memory_order_release);
  return effective;
}

const char* kml_simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "scalar";
}

SimdLevel kml_simd_level_from_name(const char* name) {
  if (name == nullptr) return SimdLevel::kScalar;
  auto matches = [&](const char* want) {
    const char* p = name;
    const char* q = want;
    auto lower = [](char c) { return c >= 'A' && c <= 'Z' ? c + 32 : c; };
    while (*p != '\0' && *q != '\0' && lower(*p) == *q) ++p, ++q;
    return *p == '\0' && *q == '\0';
  };
  if (matches("sse2")) return SimdLevel::kSse2;
  if (matches("avx2")) return SimdLevel::kAvx2;
  if (matches("neon")) return SimdLevel::kNeon;
  return SimdLevel::kScalar;  // "scalar", "off", and anything unrecognized
}

// --- public kernel entry points ---------------------------------------------

namespace {
inline const KernelTable& active() {
  return *state().table.load(std::memory_order_acquire);
}
}  // namespace

void kml_simd_matmul_f64(const double* a, int lda, const double* b, int ldb,
                         double* out, int ldo, int m, int n, int k) {
  active().matmul_f64(a, lda, b, ldb, out, ldo, m, n, k);
}
void kml_simd_matmul_f32(const float* a, int lda, const float* b, int ldb,
                         float* out, int ldo, int m, int n, int k) {
  active().matmul_f32(a, lda, b, ldb, out, ldo, m, n, k);
}
void kml_simd_matmul_bt_f64(const double* a, int lda, const double* b,
                            int ldb, double* out, int ldo, int m, int n,
                            int k) {
  active().matmul_bt_f64(a, lda, b, ldb, out, ldo, m, n, k);
}
void kml_simd_matmul_bt_f32(const float* a, int lda, const float* b, int ldb,
                            float* out, int ldo, int m, int n, int k) {
  active().matmul_bt_f32(a, lda, b, ldb, out, ldo, m, n, k);
}
void kml_simd_matmul_at_f64(const double* a, int lda, const double* b,
                            int ldb, double* out, int ldo, int m, int n,
                            int k) {
  active().matmul_at_f64(a, lda, b, ldb, out, ldo, m, n, k);
}
void kml_simd_matmul_at_f32(const float* a, int lda, const float* b, int ldb,
                            float* out, int ldo, int m, int n, int k) {
  active().matmul_at_f32(a, lda, b, ldb, out, ldo, m, n, k);
}

void kml_simd_add_f64(const double* a, const double* b, double* out, long n) {
  active().add_f64(a, b, out, n);
}
void kml_simd_sub_f64(const double* a, const double* b, double* out, long n) {
  active().sub_f64(a, b, out, n);
}
void kml_simd_mul_f64(const double* a, const double* b, double* out, long n) {
  active().mul_f64(a, b, out, n);
}
void kml_simd_axpy_f64(double alpha, const double* b, double* a, long n) {
  active().axpy_f64(alpha, b, a, n);
}
void kml_simd_scale_f64(double* a, double alpha, long n) {
  active().scale_f64(a, alpha, n);
}
void kml_simd_add_f32(const float* a, const float* b, float* out, long n) {
  active().add_f32(a, b, out, n);
}
void kml_simd_sub_f32(const float* a, const float* b, float* out, long n) {
  active().sub_f32(a, b, out, n);
}
void kml_simd_mul_f32(const float* a, const float* b, float* out, long n) {
  active().mul_f32(a, b, out, n);
}

void kml_simd_exp_span(const double* in, double* out, long n,
                       KmlScalarFn fallback) {
  active().exp_span(in, out, n, fallback);
}
void kml_simd_sigmoid_span(const double* in, double* out, long n,
                           KmlScalarFn fallback) {
  active().sigmoid_span(in, out, n, fallback);
}
void kml_simd_tanh_span(const double* in, double* out, long n,
                        KmlScalarFn fallback) {
  active().tanh_span(in, out, n, fallback);
}

void kml_simd_gemm_s8(const std::int8_t* a, int lda, const std::int8_t* b,
                      int ldb, std::int32_t* out, int ldo, int m, int n,
                      int k) {
  active().gemm_s8(a, lda, b, ldb, out, ldo, m, n, k);
}

}  // namespace kml
