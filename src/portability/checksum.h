// checksum.h — shared CRC-32 (IEEE 802.3) for every on-disk format.
//
// The model serializer (format v2), the KV write-ahead log, the KV
// manifest, and the KV run files all foot their images with the same
// checksum. It lives in portability — the lowest layer — so any subsystem
// can verify its bytes without a layering violation. Table-driven,
// integer-only, no allocation after first use.
#pragma once

#include <cstddef>
#include <cstdint>

namespace kml {

std::uint32_t kml_crc32(const void* data, std::size_t size);

}  // namespace kml
