// simd_vec.inl.h — tier-generic vector kernel bodies, included ONLY by the
// per-ISA translation units (simd_sse2.cpp, simd_avx2.cpp). Each TU supplies
// a traits class wrapping its intrinsics; this file contains no intrinsics
// itself, so the kernel logic — and with it the bit-identity reasoning — is
// written exactly once.
//
// Bit-identity recap (see simd.h): lanes map to independent OUTPUT elements.
// Per element the operation sequence is exactly the scalar reference's —
// k ascending, multiply then add, no FMA — so IEEE determinism per lane
// makes every tier produce the scalar bits.
//
// Traits contract (V = double traits, full surface; float traits need only
// the arithmetic subset used by the matmul/elementwise bodies):
//   using Elem, Reg;  static constexpr int kLanes;  kFullMask
//   load/store (unaligned), set1, zero, add, sub, mul, div
//   gather_rows(p, stride): lane l <- p[l*stride]
//   cmp_ord(x): lane mask, true where x is not NaN
//   cmp_ge/cmp_le/cmp_lt(a, b), and_(a, b), movemask, blendv(a, b, m)
//   abs(x), neg(x): sign-bit clear / flip (exact, matches scalar negate)
//   neg_where(x, m): flip sign where mask
//   trunc_i32(x) -> I: per-lane static_cast<int> (truncate toward zero)
//   i32_to_f64(I) -> Reg
//   pow2k(I k) -> Reg: bit-construct 2^k ((k+1023) << 52), normal range only
#pragma once

#include <cassert>
#include <cstddef>

#include "portability/simd_internal.h"

namespace kml::simd_detail {

// --- matmul family -----------------------------------------------------------

// out(m x n) = a(m x k) * b(k x n). Lanes run across output columns j; for
// each k the a-element is broadcast and a contiguous b-row chunk is loaded.
// Two accumulators in the main loop hide the add latency; the column tail
// runs the scalar dot in the same k order.
template <class V>
void matmul_body(const typename V::Elem* a, int lda,
                 const typename V::Elem* b, int ldb, typename V::Elem* out,
                 int ldo, int m, int n, int k) {
  using T = typename V::Elem;
  constexpr int L = V::kLanes;
  for (int i = 0; i < m; ++i) {
    const T* arow = a + static_cast<std::size_t>(i) * lda;
    T* orow = out + static_cast<std::size_t>(i) * ldo;
    int j = 0;
    for (; j + 2 * L <= n; j += 2 * L) {
      auto acc0 = V::zero();
      auto acc1 = V::zero();
      for (int kk = 0; kk < k; ++kk) {
        const auto va = V::set1(arow[kk]);
        const T* brow = b + static_cast<std::size_t>(kk) * ldb + j;
        acc0 = V::add(acc0, V::mul(va, V::load(brow)));
        acc1 = V::add(acc1, V::mul(va, V::load(brow + L)));
      }
      V::store(orow + j, acc0);
      V::store(orow + j + L, acc1);
    }
    for (; j + L <= n; j += L) {
      auto acc = V::zero();
      for (int kk = 0; kk < k; ++kk) {
        const T* brow = b + static_cast<std::size_t>(kk) * ldb + j;
        acc = V::add(acc, V::mul(V::set1(arow[kk]), V::load(brow)));
      }
      V::store(orow + j, acc);
    }
    for (; j < n; ++j) {
      T acc{};
      for (int kk = 0; kk < k; ++kk) {
        acc += arow[kk] * b[static_cast<std::size_t>(kk) * ldb + j];
      }
      orow[j] = acc;
    }
  }
}

// out(m x n) = a(k x m)^T * b(k x n): identical to matmul_body except the
// broadcast element walks a's column i (stride lda).
template <class V>
void matmul_at_body(const typename V::Elem* a, int lda,
                    const typename V::Elem* b, int ldb, typename V::Elem* out,
                    int ldo, int m, int n, int k) {
  using T = typename V::Elem;
  constexpr int L = V::kLanes;
  for (int i = 0; i < m; ++i) {
    const T* acol = a + i;
    T* orow = out + static_cast<std::size_t>(i) * ldo;
    int j = 0;
    for (; j + 2 * L <= n; j += 2 * L) {
      auto acc0 = V::zero();
      auto acc1 = V::zero();
      for (int kk = 0; kk < k; ++kk) {
        const auto va = V::set1(acol[static_cast<std::size_t>(kk) * lda]);
        const T* brow = b + static_cast<std::size_t>(kk) * ldb + j;
        acc0 = V::add(acc0, V::mul(va, V::load(brow)));
        acc1 = V::add(acc1, V::mul(va, V::load(brow + L)));
      }
      V::store(orow + j, acc0);
      V::store(orow + j + L, acc1);
    }
    for (; j + L <= n; j += L) {
      auto acc = V::zero();
      for (int kk = 0; kk < k; ++kk) {
        const auto va = V::set1(acol[static_cast<std::size_t>(kk) * lda]);
        acc = V::add(acc, V::mul(va, V::load(b + static_cast<std::size_t>(kk) *
                                                     ldb + j)));
      }
      V::store(orow + j, acc);
    }
    for (; j < n; ++j) {
      T acc{};
      for (int kk = 0; kk < k; ++kk) {
        acc += acol[static_cast<std::size_t>(kk) * lda] *
               b[static_cast<std::size_t>(kk) * ldb + j];
      }
      orow[j] = acc;
    }
  }
}

// out(m x n) = a(m x k) * b(n x k)^T. Both operands are row-contiguous along
// k, so lanes across j need strided loads of b (one element from each of L
// consecutive b rows). The gather costs more per k than matmul_body's
// contiguous load, but keeps the k-ascending per-element order — the price
// of determinism, and still far ahead of scalar.
template <class V>
void matmul_bt_body(const typename V::Elem* a, int lda,
                    const typename V::Elem* b, int ldb, typename V::Elem* out,
                    int ldo, int m, int n, int k) {
  using T = typename V::Elem;
  constexpr int L = V::kLanes;
  for (int i = 0; i < m; ++i) {
    const T* arow = a + static_cast<std::size_t>(i) * lda;
    T* orow = out + static_cast<std::size_t>(i) * ldo;
    int j = 0;
    for (; j + L <= n; j += L) {
      const T* btile = b + static_cast<std::size_t>(j) * ldb;
      auto acc = V::zero();
      for (int kk = 0; kk < k; ++kk) {
        const auto vb = V::gather_rows(btile + kk, ldb);
        acc = V::add(acc, V::mul(V::set1(arow[kk]), vb));
      }
      V::store(orow + j, acc);
    }
    for (; j < n; ++j) {
      const T* brow = b + static_cast<std::size_t>(j) * ldb;
      T acc{};
      for (int kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      orow[j] = acc;
    }
  }
}

// --- elementwise -------------------------------------------------------------

enum class EwOp { kAdd, kSub, kMul };

template <class V, EwOp Op>
void elementwise_body(const typename V::Elem* a, const typename V::Elem* b,
                      typename V::Elem* out, long n) {
  constexpr int L = V::kLanes;
  long i = 0;
  for (; i + L <= n; i += L) {
    const auto va = V::load(a + i);
    const auto vb = V::load(b + i);
    if constexpr (Op == EwOp::kAdd) V::store(out + i, V::add(va, vb));
    if constexpr (Op == EwOp::kSub) V::store(out + i, V::sub(va, vb));
    if constexpr (Op == EwOp::kMul) V::store(out + i, V::mul(va, vb));
  }
  for (; i < n; ++i) {
    if constexpr (Op == EwOp::kAdd) out[i] = a[i] + b[i];
    if constexpr (Op == EwOp::kSub) out[i] = a[i] - b[i];
    if constexpr (Op == EwOp::kMul) out[i] = a[i] * b[i];
  }
}

template <class V>
void axpy_body(double alpha, const double* b, double* a, long n) {
  constexpr int L = V::kLanes;
  const auto valpha = V::set1(alpha);
  long i = 0;
  for (; i + L <= n; i += L) {
    V::store(a + i, V::add(V::load(a + i), V::mul(valpha, V::load(b + i))));
  }
  for (; i < n; ++i) a[i] += alpha * b[i];
}

template <class V>
void scale_body(double* a, double alpha, long n) {
  constexpr int L = V::kLanes;
  const auto valpha = V::set1(alpha);
  long i = 0;
  for (; i + L <= n; i += L) {
    V::store(a + i, V::mul(V::load(a + i), valpha));
  }
  for (; i < n; ++i) a[i] *= alpha;
}

// --- transcendental spans ----------------------------------------------------

// Vector core of math::kml_exp for lanes already known finite with
// |x| <= kExpVecMax. Reproduces the scalar algorithm op for op:
//   k = trunc(x*inv_ln2 + (x >= 0 ? 0.5 : -0.5));  r = x - k*ln2;
//   degree-9 Horner in r; result = p * 2^k (bit-constructed exponent).
template <class V>
inline typename V::Reg exp_core(typename V::Reg x) {
  const auto bias =
      V::blendv(V::set1(-0.5), V::set1(0.5), V::cmp_ge(x, V::zero()));
  const auto k32 = V::trunc_i32(V::add(V::mul(x, V::set1(kInvLn2)), bias));
  const auto r = V::sub(x, V::mul(V::i32_to_f64(k32), V::set1(kLn2)));
  auto p = V::set1(kExpPoly[0]);
  for (int c = 1; c < 10; ++c) p = V::add(V::mul(p, r), V::set1(kExpPoly[c]));
  return V::mul(p, V::pow2k(k32));
}

// A chunk takes the vector path only when EVERY lane is in-domain;
// otherwise the whole chunk goes through the scalar fallback (keeps the
// control flow trivial — mixed chunks are rare in activation workloads).
template <class V>
inline bool all_within(typename V::Reg x, double bound) {
  const auto ok =
      V::and_(V::cmp_ord(x), V::cmp_le(V::abs(x), V::set1(bound)));
  return V::movemask(ok) == V::kFullMask;
}

template <class V>
void exp_span_body(const double* in, double* out, long n,
                   KmlScalarFn fallback) {
  constexpr int L = V::kLanes;
  long i = 0;
  for (; i + L <= n; i += L) {
    const auto x = V::load(in + i);
    if (!all_within<V>(x, kExpVecMax)) {
      for (int l = 0; l < L; ++l) out[i + l] = fallback(in[i + l]);
      continue;
    }
    V::store(out + i, exp_core<V>(x));
  }
  for (; i < n; ++i) out[i] = fallback(in[i]);
}

// sigmoid(x): scalar computes z = exp(-x) for x >= 0 and z = exp(x) for
// x < 0 — both equal exp(-|x|), and -|x| is a pure sign-bit op, so the
// vector z is the scalar z bitwise. Both quotients are formed and the
// x >= 0 lane mask selects, reproducing the scalar branch per lane.
template <class V>
void sigmoid_span_body(const double* in, double* out, long n,
                       KmlScalarFn fallback) {
  constexpr int L = V::kLanes;
  const auto one = V::set1(1.0);
  long i = 0;
  for (; i + L <= n; i += L) {
    const auto x = V::load(in + i);
    if (!all_within<V>(x, kExpVecMax)) {
      for (int l = 0; l < L; ++l) out[i + l] = fallback(in[i + l]);
      continue;
    }
    const auto z = exp_core<V>(V::neg(V::abs(x)));
    const auto denom = V::add(one, z);
    const auto res = V::blendv(V::div(z, denom), V::div(one, denom),
                               V::cmp_ge(x, V::zero()));
    V::store(out + i, res);
  }
  for (; i < n; ++i) out[i] = fallback(in[i]);
}

// tanh(x) = sign(x) * (1 - z) / (1 + z), z = exp(-2|x|). The vector path
// covers |x| <= 20; the scalar fallback owns the ±1 saturation tails and
// NaN, exactly as in math::kml_tanh.
template <class V>
void tanh_span_body(const double* in, double* out, long n,
                    KmlScalarFn fallback) {
  constexpr int L = V::kLanes;
  const auto one = V::set1(1.0);
  const auto minus_two = V::set1(-2.0);
  long i = 0;
  for (; i + L <= n; i += L) {
    const auto x = V::load(in + i);
    if (!all_within<V>(x, kTanhVecMax)) {
      for (int l = 0; l < L; ++l) out[i + l] = fallback(in[i + l]);
      continue;
    }
    const auto z = exp_core<V>(V::mul(minus_two, V::abs(x)));
    const auto t = V::div(V::sub(one, z), V::add(one, z));
    V::store(out + i, V::neg_where(t, V::cmp_lt(x, V::zero())));
  }
  for (; i < n; ++i) out[i] = fallback(in[i]);
}

}  // namespace kml::simd_detail
