#include "workloads/drivers.h"

#include "workloads/generator.h"
#include "workloads/mixgraph.h"

#include <cassert>

namespace kml::workloads {

const char* workload_name(WorkloadType type) {
  switch (type) {
    case WorkloadType::kReadSeq: return "readseq";
    case WorkloadType::kReadRandom: return "readrandom";
    case WorkloadType::kReadReverse: return "readreverse";
    case WorkloadType::kReadRandomWriteRandom: return "readrandomwriterandom";
    case WorkloadType::kUpdateRandom: return "updaterandom";
    case WorkloadType::kMixGraph: return "mixgraph";
    case WorkloadType::kSeekRandom: return "seekrandom";
    case WorkloadType::kReadWhileWriting: return "readwhilewriting";
    case WorkloadType::kMlIngest: return "mlingest";
  }
  return "unknown";
}

namespace {

// Shared driver loop: `step` performs one operation and returns.
template <typename Step>
RunResult drive(kv::MiniKV& db, std::uint64_t duration_ns,
                std::uint64_t max_ops, const TickFn& on_tick, Step step) {
  sim::SimClock& clock = db.stack().clock();
  const std::uint64_t start = clock.now_ns();
  const std::uint64_t deadline = start + duration_ns;
  RunResult result;
  while (clock.now_ns() < deadline && result.ops < max_ops) {
    step();
    ++result.ops;
    if (on_tick) on_tick(clock.now_ns());
  }
  result.duration_ns = clock.now_ns() - start;
  result.ops_per_sec =
      result.duration_ns == 0
          ? 0.0
          : static_cast<double>(result.ops) * 1e9 / result.duration_ns;
  return result;
}

}  // namespace

RunResult run_workload(kv::MiniKV& db, const WorkloadConfig& cfg,
                       std::uint64_t duration_ns, std::uint64_t max_ops,
                       const TickFn& on_tick) {
  switch (cfg.type) {
    case WorkloadType::kReadSeq: {
      auto it = db.new_iterator();
      it->seek_to_first();
      return drive(db, duration_ns, max_ops, on_tick, [&] {
        if (!it->valid()) it->seek_to_first();
        it->next();
      });
    }

    case WorkloadType::kReadReverse: {
      auto it = db.new_iterator();
      it->seek_to_last();
      return drive(db, duration_ns, max_ops, on_tick, [&] {
        if (!it->valid()) it->seek_to_last();
        it->prev();
      });
    }

    case WorkloadType::kReadRandom: {
      UniformKeys keys(db.num_keys(), cfg.seed);
      return drive(db, duration_ns, max_ops, on_tick,
                   [&] { db.get(keys.next()); });
    }

    case WorkloadType::kReadRandomWriteRandom: {
      UniformKeys keys(db.num_keys(), cfg.seed);
      math::Rng op_rng(cfg.seed ^ 0x72727772ULL);
      return drive(db, duration_ns, max_ops, on_tick, [&] {
        const std::uint64_t key = keys.next();
        if (static_cast<int>(op_rng.next_below(100)) < cfg.read_percent) {
          db.get(key);
        } else {
          db.put(key);
        }
      });
    }

    case WorkloadType::kUpdateRandom: {
      // Read-modify-write of random keys (db_bench updaterandom).
      UniformKeys keys(db.num_keys(), cfg.seed);
      return drive(db, duration_ns, max_ops, on_tick, [&] {
        const std::uint64_t key = keys.next();
        db.get(key);
        db.put(key);
      });
    }

    case WorkloadType::kSeekRandom: {
      // db_bench seekrandom: position an iterator at a random key and read
      // a handful of entries forward.
      UniformKeys keys(db.num_keys(), cfg.seed);
      auto it = db.new_iterator();
      return drive(db, duration_ns, max_ops, on_tick, [&] {
        it->seek(keys.next());
        for (std::uint64_t i = 0; i < cfg.seek_nexts && it->valid(); ++i) {
          it->next();
        }
      });
    }

    case WorkloadType::kReadWhileWriting: {
      // db_bench readwhilewriting: a reader stream with a concurrent
      // writer; the simulator interleaves the writer's puts at a fixed
      // rate among the reads.
      UniformKeys read_keys(db.num_keys(), cfg.seed);
      UniformKeys write_keys(db.num_keys(), cfg.seed ^ 0x77726974ULL);
      std::uint64_t op_index = 0;
      const int writes = cfg.writes_per_16_reads;
      return drive(db, duration_ns, max_ops, on_tick, [&] {
        if (static_cast<int>(op_index % 16) < writes) {
          db.put(write_keys.next());
        } else {
          db.get(read_keys.next());
        }
        ++op_index;
      });
    }

    case WorkloadType::kMlIngest: {
      // ML training ingest: epochs of sequential shard reads (the dataset
      // files), shuffled minibatch sampling, and occasional writes
      // (checkpoints / metric logs). Fixed 16-op cycle: 10 shard-scan
      // steps, 5 shuffled reads, 1 write — sequential-dominant with
      // enough random traffic to blur the readahead heuristic's view.
      const std::uint64_t shard_len =
          db.num_keys() / 64 > 0 ? db.num_keys() / 64 : 1;
      UniformKeys sample_keys(db.num_keys(), cfg.seed);
      UniformKeys write_keys(db.num_keys(), cfg.seed ^ 0x6d6c696eULL);
      math::Rng shard_rng(cfg.seed ^ 0x73686472ULL);
      auto it = db.new_iterator();
      std::uint64_t cursor = shard_rng.next_below(db.num_keys());
      std::uint64_t in_shard = 0;
      std::uint64_t op_index = 0;
      bool stale_iter = false;
      it->seek(cursor);
      return drive(db, duration_ns, max_ops, on_tick, [&] {
        const std::uint64_t phase = op_index % 16;
        ++op_index;
        if (phase < 10) {
          // Sequential shard step. Writes invalidate iterators, so resume
          // from the remembered cursor on a fresh snapshot.
          if (stale_iter) {
            it = db.new_iterator();
            it->seek(cursor);
            stale_iter = false;
          }
          if (!it->valid() || in_shard >= shard_len) {
            cursor = shard_rng.next_below(db.num_keys());
            in_shard = 0;
            it->seek(cursor);
          }
          if (it->valid()) {
            cursor = it->key() + 1;
            ++in_shard;
            it->next();
          }
        } else if (phase < 15) {
          db.get(sample_keys.next());
        } else {
          db.put(write_keys.next());
          stale_iter = true;
        }
      });
    }

    case WorkloadType::kMixGraph: {
      MixGraphGenerator gen(db.num_keys(), cfg.zipf_theta,
                            cfg.mix_get_percent, cfg.mix_put_percent,
                            cfg.scan_length, cfg.seed);
      auto it = db.new_iterator();
      std::uint64_t writes_since_iter = 0;
      return drive(db, duration_ns, max_ops, on_tick, [&] {
        const MixAction action = gen.next();
        switch (action.op) {
          case MixOp::kGet:
            db.get(action.key);
            break;
          case MixOp::kPut:
            db.put(action.key);
            ++writes_since_iter;
            break;
          case MixOp::kScan: {
            // Refresh the iterator snapshot if writes have landed since it
            // was created (iterators are invalidated by put()).
            if (writes_since_iter > 0) {
              it = db.new_iterator();
              writes_since_iter = 0;
            }
            it->seek(action.key);
            for (std::uint64_t i = 0; i < action.scan_length && it->valid();
                 ++i) {
              it->next();
            }
            break;
          }
        }
      });
    }
  }
  assert(false && "unreachable workload type");
  return RunResult{};
}

}  // namespace kml::workloads
