#include "workloads/mixgraph.h"

namespace kml::workloads {

MixGraphGenerator::MixGraphGenerator(std::uint64_t num_keys,
                                     double zipf_theta, int get_percent,
                                     int put_percent,
                                     std::uint64_t mean_scan_length,
                                     std::uint64_t seed)
    : op_rng_(seed ^ 0x6d69786772617068ULL),
      keys_(num_keys, zipf_theta, seed),
      get_percent_(get_percent),
      put_percent_(put_percent),
      mean_scan_length_(mean_scan_length == 0 ? 1 : mean_scan_length) {}

MixAction MixGraphGenerator::next() {
  const int roll = static_cast<int>(op_rng_.next_below(100));
  const std::uint64_t key = keys_.next();
  if (roll < get_percent_) {
    return MixAction{MixOp::kGet, key, 0};
  }
  if (roll < get_percent_ + put_percent_) {
    return MixAction{MixOp::kPut, key, 0};
  }
  // Scan length: geometric-ish around the mean (Cao et al. observe short,
  // heavy-tailed scans). Draw uniform in [1, 2*mean) for a simple
  // mean-preserving spread.
  const std::uint64_t len = 1 + op_rng_.next_below(2 * mean_scan_length_);
  return MixAction{MixOp::kScan, key, len};
}

}  // namespace kml::workloads
