// drivers.h — the six db_bench-style workloads from the paper (§4).
//
// Training classes (the four workloads the readahead network is trained
// on, in label order) come first; updaterandom and mixgraph are the
// never-seen-before evaluation workloads.
#pragma once

#include "kv/iterator.h"
#include "kv/minikv.h"

#include <functional>

namespace kml::workloads {

enum class WorkloadType : int {
  kReadSeq = 0,
  kReadRandom = 1,
  kReadReverse = 2,
  kReadRandomWriteRandom = 3,
  // Evaluation-only workloads (not in the training set):
  kUpdateRandom = 4,
  kMixGraph = 5,
  // Extra db_bench workloads beyond the paper's six:
  kSeekRandom = 6,
  kReadWhileWriting = 7,
  // ML training ingest, the paper's own consumer seen from the storage
  // side: sequential shard scans (dataset files), shuffled minibatch
  // sampling (random reads), and a trickle of interleaved writes
  // (checkpoints, metric logs) in a 10:5:1 op mix.
  kMlIngest = 8,
};

inline constexpr int kNumTrainingClasses = 4;
inline constexpr int kNumWorkloads = 6;     // the paper's evaluation set
inline constexpr int kNumAllWorkloads = 9;

const char* workload_name(WorkloadType type);

struct WorkloadConfig {
  WorkloadType type = WorkloadType::kReadRandom;
  std::uint64_t seed = 42;
  int read_percent = 90;     // readrandomwriterandom read fraction
  double zipf_theta = 0.9;   // mixgraph key popularity
  int mix_get_percent = 85;  // mixgraph op mix (rest after put = scans)
  int mix_put_percent = 11;
  std::uint64_t scan_length = 50;  // entries per mixgraph scan
  std::uint64_t seek_nexts = 8;    // entries read after a seekrandom seek
  int writes_per_16_reads = 2;     // readwhilewriting background write rate
};

struct RunResult {
  std::uint64_t ops = 0;
  std::uint64_t duration_ns = 0;
  double ops_per_sec = 0.0;
};

// Called after every completed operation with the current virtual time;
// the closed-loop harness uses it to run the tuner on 1 s boundaries.
using TickFn = std::function<void(std::uint64_t now_ns)>;

// Run `cfg.type` against `db` until `duration_ns` of virtual time has
// elapsed since the call started, or `max_ops` operations completed
// (whichever first). Throughput is ops per *virtual* second.
RunResult run_workload(kv::MiniKV& db, const WorkloadConfig& cfg,
                       std::uint64_t duration_ns, std::uint64_t max_ops,
                       const TickFn& on_tick = {});

}  // namespace kml::workloads
