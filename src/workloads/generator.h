// generator.h — key-distribution generators for the workload drivers.
//
// Uniform random (readrandom/updaterandom), Zipfian (mixgraph — Cao et
// al.'s RocksDB workload study reports Zipfian key popularity with
// theta ~0.9), and wrap-around sequential cursors for scans.
#pragma once

#include "math/rng.h"

#include <cstdint>
#include <memory>

namespace kml::workloads {

class KeyGenerator {
 public:
  virtual ~KeyGenerator() = default;
  virtual std::uint64_t next() = 0;
};

class UniformKeys final : public KeyGenerator {
 public:
  UniformKeys(std::uint64_t num_keys, std::uint64_t seed)
      : rng_(seed), num_keys_(num_keys) {}
  std::uint64_t next() override { return rng_.next_below(num_keys_); }

 private:
  math::Rng rng_;
  std::uint64_t num_keys_;
};

// xxhash-style avalanche shared by the skewed generators.
inline std::uint64_t scramble_key(std::uint64_t x) {
  x *= 0xc2b2ae3d27d4eb4fULL;
  x ^= x >> 29;
  x *= 0x165667b19e3779f9ULL;
  x ^= x >> 32;
  return x;
}

class ZipfKeys final : public KeyGenerator {
 public:
  ZipfKeys(std::uint64_t num_keys, double theta, std::uint64_t seed)
      : rng_(seed), zipf_(num_keys, theta, rng_), num_keys_(num_keys) {}

  // Rank -> key scrambling so the hot set is spread over the key space
  // (RocksDB's hot keys are not physically clustered).
  std::uint64_t next() override {
    const std::uint64_t rank = zipf_.next();
    return scramble_key(rank) % num_keys_;
  }

 private:
  math::Rng rng_;
  math::Zipf zipf_;
  std::uint64_t num_keys_;
};

// Zipfian tenant-arrival process for fleet serving: each next() is "which
// open file produced the next ready feature-window". Tenant id == popularity
// rank (tenant 0 is the hottest file), which keeps fleet tests legible —
// "the Zipf tail" is literally the high tenant ids. The optional scramble
// spreads the hot tenants across the fleet's shard map instead (rank-ordered
// ids would pile the head onto whatever shards low ids hash to under a weak
// fold).
class ZipfianTenantTraffic final : public KeyGenerator {
 public:
  ZipfianTenantTraffic(std::uint64_t num_tenants, double theta,
                       std::uint64_t seed, bool scramble_ids = false)
      : rng_(seed),
        zipf_(num_tenants, theta, rng_),
        num_tenants_(num_tenants),
        scramble_ids_(scramble_ids) {}

  std::uint64_t next() override {
    const std::uint64_t rank = zipf_.next();
    return scramble_ids_ ? scramble_key(rank) % num_tenants_ : rank;
  }

 private:
  math::Rng rng_;
  math::Zipf zipf_;
  std::uint64_t num_tenants_;
  bool scramble_ids_;
};

}  // namespace kml::workloads
