// mixgraph.h — the complex mixed workload (Cao et al., FAST '20).
//
// The paper's hardest evaluation case: a realistic RocksDB production mix of
// Zipfian point reads, writes, and short range scans. This generator
// produces one operation descriptor at a time; the driver executes it
// against MiniKV.
#pragma once

#include "math/rng.h"
#include "workloads/generator.h"

#include <cstdint>

namespace kml::workloads {

enum class MixOp { kGet, kPut, kScan };

struct MixAction {
  MixOp op;
  std::uint64_t key;
  std::uint64_t scan_length;  // only for kScan
};

class MixGraphGenerator {
 public:
  MixGraphGenerator(std::uint64_t num_keys, double zipf_theta,
                    int get_percent, int put_percent,
                    std::uint64_t mean_scan_length, std::uint64_t seed);

  MixAction next();

 private:
  math::Rng op_rng_;
  ZipfKeys keys_;
  int get_percent_;
  int put_percent_;
  std::uint64_t mean_scan_length_;
};

}  // namespace kml::workloads
