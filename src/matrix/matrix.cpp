#include "matrix/matrix.h"

namespace kml::matrix {

MatD random_uniform(int rows, int cols, double lo, double hi,
                    math::Rng& rng) {
  MatD m(rows, cols);
  FpuGuard<double> guard;
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.uniform(lo, hi);
  return m;
}

MatD xavier_uniform(int fan_in, int fan_out, math::Rng& rng) {
  const double limit =
      math::kml_sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  return random_uniform(fan_in, fan_out, -limit, limit, rng);
}

MatF to_float(const MatD& m) {
  MatF out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) {
    out.data()[i] = static_cast<float>(m.data()[i]);
  }
  return out;
}

MatD to_double(const MatF& m) {
  MatD out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) {
    out.data()[i] = static_cast<double>(m.data()[i]);
  }
  return out;
}

MatX to_fixed(const MatD& m) {
  MatX out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) {
    out.data()[i] = math::Fixed::from_double(m.data()[i]);
  }
  return out;
}

MatD fixed_to_double(const MatX& m) {
  MatD out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.size(); ++i) {
    out.data()[i] = m.data()[i].to_double();
  }
  return out;
}

double max_abs_diff(const MatD& a, const MatD& b) {
  assert(a.same_shape(b));
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = math::kml_max(worst, math::kml_abs(a.data()[i] - b.data()[i]));
  }
  return worst;
}

bool approx_equal(const MatD& a, const MatD& b, double tol) {
  return a.same_shape(b) && max_abs_diff(a, b) <= tol;
}

}  // namespace kml::matrix
