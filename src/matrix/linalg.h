// linalg.h — linear-algebra kernels over Mat<T> (§2).
//
// Shapes follow the usual (rows x cols) convention; all functions assert
// conformance in debug builds. FP variants take one FPU bracket per call.
#pragma once

#include "matrix/matrix.h"

namespace kml::matrix {

// out = a * b  (m x k) * (k x n) -> (m x n). Register-tiled kernel: the
// output is walked in MR x NR blocks whose partial sums live in registers,
// so each b-row load is reused across MR output rows instead of once per
// row. Only the i/j loops are blocked — per output element the k reduction
// runs ascending exactly as in matmul_naive, so results are bit-identical
// (FP addition order is preserved, not just mathematically equal).
template <typename T>
void matmul(const Mat<T>& a, const Mat<T>& b, Mat<T>& out);

// out = a * b^T  (m x k) * (n x k)^T -> (m x n); the backward-pass shape.
// Blocked like matmul; bit-identical to matmul_bt_naive.
template <typename T>
void matmul_bt(const Mat<T>& a, const Mat<T>& b, Mat<T>& out);

// out = a^T * b  (k x m)^T * (k x n) -> (m x n); weight-gradient shape.
// Blocked like matmul; bit-identical to matmul_at_naive.
template <typename T>
void matmul_at(const Mat<T>& a, const Mat<T>& b, Mat<T>& out);

// Reference single-loop-nest kernels (the pre-blocking implementations).
// Kept as the ground truth for the equivalence tests and the baseline for
// the blocked-vs-naive throughput benchmark.
template <typename T>
void matmul_naive(const Mat<T>& a, const Mat<T>& b, Mat<T>& out);
template <typename T>
void matmul_bt_naive(const Mat<T>& a, const Mat<T>& b, Mat<T>& out);
template <typename T>
void matmul_at_naive(const Mat<T>& a, const Mat<T>& b, Mat<T>& out);

// Elementwise: out = a + b, out = a - b, out = a ⊙ b.
template <typename T>
void add(const Mat<T>& a, const Mat<T>& b, Mat<T>& out);
template <typename T>
void sub(const Mat<T>& a, const Mat<T>& b, Mat<T>& out);
template <typename T>
void hadamard(const Mat<T>& a, const Mat<T>& b, Mat<T>& out);

// In-place: a += alpha * b (axpy). The SGD update step.
void axpy(double alpha, const MatD& b, MatD& a);

// out = m^T.
template <typename T>
Mat<T> transpose(const Mat<T>& m);

// Scale in place.
void scale(MatD& m, double alpha);

// Broadcast-add a 1 x n bias row to every row of (m x n) `a`.
void add_bias_row(MatD& a, const MatD& bias);

// Column-wise sum of (m x n) into (1 x n) — the bias gradient.
void col_sums(const MatD& a, MatD& out);

// Row-wise softmax, stable.
void softmax_rows(const MatD& in, MatD& out);

// Index of the max element in each row -> n-element int matrix (n x 1).
MatI argmax_rows(const MatD& m);

// Frobenius norm.
double frobenius_norm(const MatD& m);

}  // namespace kml::matrix
