// matrix.h — dense matrices over int / fixed-point / float / double (§2, §3.1).
//
// The paper's library implements its own matrix manipulation and linear
// algebra because neither libc nor BLAS exists in the kernel, and supports
// multiple element types so deployments can trade accuracy against FPU use:
//   Mat<int>          — integer counters/labels
//   Mat<math::Fixed>  — Q16.16, FPU-free inference
//   Mat<float>        — compact FP
//   Mat<double>       — training precision (default for the NN stack)
//
// Storage is row-major, allocated through kml_malloc so every weight byte
// shows up in kml_mem_stats() — that is how the paper's 3,916-byte model
// footprint is measured. Floating-point kernels (matmul etc.) bracket their
// work with kml_fpu_begin/end; tests assert the bracket count stays O(1) per
// operation, not O(elements).
#pragma once

#include "math/approx.h"
#include "math/fixed.h"
#include "math/rng.h"
#include "portability/kml_lib.h"

#include <cassert>
#include <cstddef>
#include <utility>

namespace kml::matrix {

// True for element types whose arithmetic needs the FPU.
template <typename T>
inline constexpr bool kNeedsFpu = false;
template <>
inline constexpr bool kNeedsFpu<float> = true;
template <>
inline constexpr bool kNeedsFpu<double> = true;

// RAII guard: enables the FPU only for types that need it.
template <typename T>
class FpuGuard {
 public:
  FpuGuard() {
    if constexpr (kNeedsFpu<T>) kml_fpu_begin();
  }
  ~FpuGuard() {
    if constexpr (kNeedsFpu<T>) kml_fpu_end();
  }
  FpuGuard(const FpuGuard&) = delete;
  FpuGuard& operator=(const FpuGuard&) = delete;
};

template <typename T>
class Mat {
 public:
  Mat() = default;

  // Allocation failure degrades to an empty (0 x 0) matrix rather than a
  // null-backed one: every subsequent size()-bounded loop is then a no-op
  // and callers can detect the failure via empty(). This is the malloc
  // fault-injection contract for model construction under memory pressure.
  Mat(int rows, int cols) : rows_(rows), cols_(cols) {
    assert(rows >= 0 && cols >= 0);
    if (size() > 0) {
      data_ = static_cast<T*>(kml_malloc(size() * sizeof(T)));
      if (data_ == nullptr) {
        KML_ERROR("Mat: allocation failed (%d x %d)", rows, cols);
        rows_ = 0;
        cols_ = 0;
        return;
      }
      cap_ = size();
      for (std::size_t i = 0; i < size(); ++i) data_[i] = T{};
    }
  }

  Mat(const Mat& o) : Mat(o.rows_, o.cols_) {
    for (std::size_t i = 0; i < size(); ++i) data_[i] = o.data_[i];
  }

  Mat(Mat&& o) noexcept
      : rows_(o.rows_), cols_(o.cols_), cap_(o.cap_), data_(o.data_) {
    o.rows_ = 0;
    o.cols_ = 0;
    o.cap_ = 0;
    o.data_ = nullptr;
  }

  Mat& operator=(Mat o) noexcept {
    swap(o);
    return *this;
  }

  ~Mat() { kml_free(data_); }

  void swap(Mat& o) noexcept {
    std::swap(rows_, o.rows_);
    std::swap(cols_, o.cols_);
    std::swap(cap_, o.cap_);
    std::swap(data_, o.data_);
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const {
    return static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_);
  }
  // Allocated element capacity; >= size() whenever storage is live. The
  // storage backing a shrunken matrix is retained so later ensure_shape()
  // calls can grow back without touching the allocator.
  std::size_t capacity() const { return cap_; }
  bool empty() const { return size() == 0; }

  // Reshape for full overwrite: the hot-path reuse primitive. Keeps the
  // existing storage whenever rows*cols fits the allocated capacity (the
  // surviving elements are unspecified — callers must write every element),
  // and only reallocates on growth. Steady-state shapes hit the allocator
  // zero times.
  void ensure_shape(int rows, int cols) {
    assert(rows >= 0 && cols >= 0);
    const std::size_t need =
        static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
    if (need <= cap_ && data_ != nullptr) {
      rows_ = rows;
      cols_ = cols;
      return;
    }
    if (need == 0) {
      rows_ = rows;
      cols_ = cols;
      return;
    }
    Mat fresh(rows, cols);
    swap(fresh);
  }

  // Deep copy into this matrix, reusing storage when it fits (unlike
  // operator=, which always reallocates through the copy ctor). The cache
  // and checkpoint paths use this to stay allocation-free at steady state.
  void copy_from(const Mat& o) {
    if (this == &o) return;
    ensure_shape(o.rows_, o.cols_);
    for (std::size_t i = 0; i < size(); ++i) data_[i] = o.data_[i];
  }

  T& at(int r, int c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  const T& at(int r, int c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  T& operator()(int r, int c) { return at(r, c); }
  const T& operator()(int r, int c) const { return at(r, c); }

  T* data() { return data_; }
  const T* data() const { return data_; }
  T* row(int r) { return data_ + static_cast<std::size_t>(r) * cols_; }
  const T* row(int r) const {
    return data_ + static_cast<std::size_t>(r) * cols_;
  }

  void fill(T v) {
    for (std::size_t i = 0; i < size(); ++i) data_[i] = v;
  }

  static Mat zeros(int rows, int cols) { return Mat(rows, cols); }

  static Mat filled(int rows, int cols, T v) {
    Mat m(rows, cols);
    m.fill(v);
    return m;
  }

  // Apply f elementwise in place.
  template <typename F>
  void apply(F f) {
    FpuGuard<T> guard;
    for (std::size_t i = 0; i < size(); ++i) data_[i] = f(data_[i]);
  }

  bool same_shape(const Mat& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::size_t cap_ = 0;  // allocated elements; size() <= cap_ when live
  T* data_ = nullptr;
};

using MatD = Mat<double>;
using MatF = Mat<float>;
using MatI = Mat<int>;
using MatX = Mat<math::Fixed>;

// --- Construction helpers ---------------------------------------------------

// Uniform random in [lo, hi) — weight initialization.
MatD random_uniform(int rows, int cols, double lo, double hi, math::Rng& rng);

// Xavier/Glorot uniform init for a fan_in x fan_out linear layer.
MatD xavier_uniform(int fan_in, int fan_out, math::Rng& rng);

// Convert between element types (Fixed <-> double conversions saturate).
MatF to_float(const MatD& m);
MatD to_double(const MatF& m);
MatX to_fixed(const MatD& m);
MatD fixed_to_double(const MatX& m);

// --- Comparison --------------------------------------------------------------

// Max |a-b| over all elements; matrices must be same shape.
double max_abs_diff(const MatD& a, const MatD& b);

bool approx_equal(const MatD& a, const MatD& b, double tol);

}  // namespace kml::matrix
