#include "matrix/linalg.h"

#include "portability/simd.h"
#include "portability/threadpool.h"

namespace kml::matrix {

namespace {

// --- SIMD seam routing -------------------------------------------------------
//
// double/float kernels route through portability/simd.h whenever a vector
// tier is active. The parallel split (kMr row stripes / element chunks,
// same par_grain policy) is unchanged, and the seam's determinism contract
// makes every tier bit-identical to the scalar tiled path — so routing is
// a pure speed decision, invisible to results. int and math::Fixed always
// take the tiled scalar path.

template <typename T>
inline constexpr bool kSimdRouted = false;
template <>
inline constexpr bool kSimdRouted<double> = true;
template <>
inline constexpr bool kSimdRouted<float> = true;

inline bool simd_active() {
  return kml_simd_level() != SimdLevel::kScalar;
}

inline void simd_mm(const double* a, int lda, const double* b, int ldb,
                    double* o, int ldo, int m, int n, int k) {
  kml_simd_matmul_f64(a, lda, b, ldb, o, ldo, m, n, k);
}
inline void simd_mm(const float* a, int lda, const float* b, int ldb,
                    float* o, int ldo, int m, int n, int k) {
  kml_simd_matmul_f32(a, lda, b, ldb, o, ldo, m, n, k);
}
inline void simd_mm_bt(const double* a, int lda, const double* b, int ldb,
                       double* o, int ldo, int m, int n, int k) {
  kml_simd_matmul_bt_f64(a, lda, b, ldb, o, ldo, m, n, k);
}
inline void simd_mm_bt(const float* a, int lda, const float* b, int ldb,
                       float* o, int ldo, int m, int n, int k) {
  kml_simd_matmul_bt_f32(a, lda, b, ldb, o, ldo, m, n, k);
}
inline void simd_mm_at(const double* a, int lda, const double* b, int ldb,
                       double* o, int ldo, int m, int n, int k) {
  kml_simd_matmul_at_f64(a, lda, b, ldb, o, ldo, m, n, k);
}
inline void simd_mm_at(const float* a, int lda, const float* b, int ldb,
                       float* o, int ldo, int m, int n, int k) {
  kml_simd_matmul_at_f32(a, lda, b, ldb, o, ldo, m, n, k);
}
inline void simd_ew_add(const double* a, const double* b, double* o, long n) {
  kml_simd_add_f64(a, b, o, n);
}
inline void simd_ew_add(const float* a, const float* b, float* o, long n) {
  kml_simd_add_f32(a, b, o, n);
}
inline void simd_ew_sub(const double* a, const double* b, double* o, long n) {
  kml_simd_sub_f64(a, b, o, n);
}
inline void simd_ew_sub(const float* a, const float* b, float* o, long n) {
  kml_simd_sub_f32(a, b, o, n);
}
inline void simd_ew_mul(const double* a, const double* b, double* o, long n) {
  kml_simd_mul_f64(a, b, o, n);
}
inline void simd_ew_mul(const float* a, const float* b, float* o, long n) {
  kml_simd_mul_f32(a, b, o, n);
}

// Register-tile footprint: kMr x kNr partial sums held in locals across the
// whole k loop. 8 x 4 measured fastest at -O2 on baseline x86-64 (SSE2):
// each tile row is two 2-wide vector accumulators, and the tall tile
// amortizes every b-row load across eight rows of a.
constexpr int kMr = 8;
constexpr int kNr = 4;

// Parallelization policy. Kernels partition independent output rows (or
// elements) across the pool with static chunking: every output element is
// computed by exactly one worker running the same k-ascending loops as the
// serial code, so results are bit-identical at ANY thread count. The grain
// keeps at least kParMinWork scalar mul-adds (or elementwise ops) per
// chunk — below that, dispatch overhead beats the win and parallel_for
// degrades to the plain serial loop (preserving, among other things, the
// one-FPU-region-per-op property for small matrices).
constexpr long kParMinWork = 32'768;

inline long par_grain(long work_per_unit) {
  if (work_per_unit < 1) work_per_unit = 1;
  const long g = (kParMinWork + work_per_unit - 1) / work_per_unit;
  return g < 1 ? 1 : g;
}

// One output tile of matmul: out[i0..i0+mr) x [j0..j0+nr) = a * b over the
// full k range, k strictly ascending per element (bit-identity contract).
// The mr==kMr && nr==kNr fast path gives the compiler constant trip counts
// to unroll/vectorize; ragged edge tiles take the runtime-bound path.
template <typename T, int MR, int NR>
inline void matmul_tile_fixed(const T* a, int lda, const T* b, int ldb,
                              T* out, int ldo, int kdim) {
  T acc[MR][NR] = {};
  for (int k = 0; k < kdim; ++k) {
    const T* brow = b + static_cast<std::size_t>(k) * ldb;
    for (int mi = 0; mi < MR; ++mi) {
      const T aik = a[static_cast<std::size_t>(mi) * lda + k];
      for (int ni = 0; ni < NR; ++ni) acc[mi][ni] += aik * brow[ni];
    }
  }
  for (int mi = 0; mi < MR; ++mi) {
    for (int ni = 0; ni < NR; ++ni) {
      out[static_cast<std::size_t>(mi) * ldo + ni] = acc[mi][ni];
    }
  }
}

template <typename T>
inline void matmul_tile_edge(const T* a, int lda, const T* b, int ldb, T* out,
                             int ldo, int kdim, int mr, int nr) {
  T acc[kMr][kNr] = {};
  for (int k = 0; k < kdim; ++k) {
    const T* brow = b + static_cast<std::size_t>(k) * ldb;
    for (int mi = 0; mi < mr; ++mi) {
      const T aik = a[static_cast<std::size_t>(mi) * lda + k];
      for (int ni = 0; ni < nr; ++ni) acc[mi][ni] += aik * brow[ni];
    }
  }
  for (int mi = 0; mi < mr; ++mi) {
    for (int ni = 0; ni < nr; ++ni) {
      out[static_cast<std::size_t>(mi) * ldo + ni] = acc[mi][ni];
    }
  }
}

// Tile of out = a^T * b: a is (kdim x m) so the mi-th tile row reads a's
// column i0+mi, stride lda. Same ascending-k reduction.
template <typename T, int MR, int NR>
inline void matmul_at_tile_fixed(const T* a, int lda, const T* b, int ldb,
                                 T* out, int ldo, int kdim) {
  T acc[MR][NR] = {};
  for (int k = 0; k < kdim; ++k) {
    const T* arow = a + static_cast<std::size_t>(k) * lda;
    const T* brow = b + static_cast<std::size_t>(k) * ldb;
    for (int mi = 0; mi < MR; ++mi) {
      const T aki = arow[mi];
      for (int ni = 0; ni < NR; ++ni) acc[mi][ni] += aki * brow[ni];
    }
  }
  for (int mi = 0; mi < MR; ++mi) {
    for (int ni = 0; ni < NR; ++ni) {
      out[static_cast<std::size_t>(mi) * ldo + ni] = acc[mi][ni];
    }
  }
}

template <typename T>
inline void matmul_at_tile_edge(const T* a, int lda, const T* b, int ldb,
                                T* out, int ldo, int kdim, int mr, int nr) {
  T acc[kMr][kNr] = {};
  for (int k = 0; k < kdim; ++k) {
    const T* arow = a + static_cast<std::size_t>(k) * lda;
    const T* brow = b + static_cast<std::size_t>(k) * ldb;
    for (int mi = 0; mi < mr; ++mi) {
      const T aki = arow[mi];
      for (int ni = 0; ni < nr; ++ni) acc[mi][ni] += aki * brow[ni];
    }
  }
  for (int mi = 0; mi < mr; ++mi) {
    for (int ni = 0; ni < nr; ++ni) {
      out[static_cast<std::size_t>(mi) * ldo + ni] = acc[mi][ni];
    }
  }
}

// Tile of out = a * b^T: both operands are walked along their rows, the
// reduction is a dot product per element, k ascending as in the naive dot.
template <typename T, int MR, int NR>
inline void matmul_bt_tile_fixed(const T* a, int lda, const T* b, int ldb,
                                 T* out, int ldo, int kdim) {
  T acc[MR][NR] = {};
  for (int k = 0; k < kdim; ++k) {
    for (int mi = 0; mi < MR; ++mi) {
      const T aik = a[static_cast<std::size_t>(mi) * lda + k];
      for (int ni = 0; ni < NR; ++ni) {
        acc[mi][ni] += aik * b[static_cast<std::size_t>(ni) * ldb + k];
      }
    }
  }
  for (int mi = 0; mi < MR; ++mi) {
    for (int ni = 0; ni < NR; ++ni) {
      out[static_cast<std::size_t>(mi) * ldo + ni] = acc[mi][ni];
    }
  }
}

template <typename T>
inline void matmul_bt_tile_edge(const T* a, int lda, const T* b, int ldb,
                                T* out, int ldo, int kdim, int mr, int nr) {
  T acc[kMr][kNr] = {};
  for (int k = 0; k < kdim; ++k) {
    for (int mi = 0; mi < mr; ++mi) {
      const T aik = a[static_cast<std::size_t>(mi) * lda + k];
      for (int ni = 0; ni < nr; ++ni) {
        acc[mi][ni] += aik * b[static_cast<std::size_t>(ni) * ldb + k];
      }
    }
  }
  for (int mi = 0; mi < mr; ++mi) {
    for (int ni = 0; ni < nr; ++ni) {
      out[static_cast<std::size_t>(mi) * ldo + ni] = acc[mi][ni];
    }
  }
}

}  // namespace

template <typename T>
void matmul(const Mat<T>& a, const Mat<T>& b, Mat<T>& out) {
  assert(a.cols() == b.rows());
  assert(out.rows() == a.rows() && out.cols() == b.cols());
  FpuGuard<T> guard;
  const int m = a.rows();
  const int n = b.cols();
  const int kdim = a.cols();
  const int lda = a.cols();
  const int ldb = b.cols();
  const int ldo = out.cols();
  // Row-blocks are independent: each writes a disjoint kMr-row stripe of
  // out. Partitioning them across workers keeps every output element on
  // exactly one worker with the same k-ascending tile loops.
  const long blocks = (m + kMr - 1) / kMr;
  const long block_work = static_cast<long>(kMr) * n * kdim;
  if constexpr (kSimdRouted<T>) {
    if (simd_active()) {
      parallel_for(blocks, par_grain(block_work), [&](long b0, long b1, int) {
        FpuGuard<T> wguard;
        const int i0 = static_cast<int>(b0) * kMr;
        const long hi = b1 * kMr;
        const int i1 = hi < m ? static_cast<int>(hi) : m;
        simd_mm(a.data() + static_cast<std::size_t>(i0) * lda, lda, b.data(),
                ldb, out.data() + static_cast<std::size_t>(i0) * ldo, ldo,
                i1 - i0, n, kdim);
      });
      return;
    }
  }
  parallel_for(blocks, par_grain(block_work), [&](long b0, long b1, int) {
    FpuGuard<T> wguard;
    for (long bi = b0; bi < b1; ++bi) {
      const int i0 = static_cast<int>(bi) * kMr;
      const int mr = m - i0 < kMr ? m - i0 : kMr;
      const T* atile = a.data() + static_cast<std::size_t>(i0) * lda;
      for (int j0 = 0; j0 < n; j0 += kNr) {
        const int nr = n - j0 < kNr ? n - j0 : kNr;
        T* otile = out.data() + static_cast<std::size_t>(i0) * ldo + j0;
        if (mr == kMr && nr == kNr) {
          matmul_tile_fixed<T, kMr, kNr>(atile, lda, b.data() + j0, ldb,
                                         otile, ldo, kdim);
        } else {
          matmul_tile_edge<T>(atile, lda, b.data() + j0, ldb, otile, ldo,
                              kdim, mr, nr);
        }
      }
    }
  });
}

template <typename T>
void matmul_bt(const Mat<T>& a, const Mat<T>& b, Mat<T>& out) {
  assert(a.cols() == b.cols());
  assert(out.rows() == a.rows() && out.cols() == b.rows());
  FpuGuard<T> guard;
  const int m = a.rows();
  const int n = b.rows();
  const int kdim = a.cols();
  const int lda = a.cols();
  const int ldb = b.cols();
  const int ldo = out.cols();
  const long blocks = (m + kMr - 1) / kMr;
  const long block_work = static_cast<long>(kMr) * n * kdim;
  if constexpr (kSimdRouted<T>) {
    if (simd_active()) {
      parallel_for(blocks, par_grain(block_work), [&](long b0, long b1, int) {
        FpuGuard<T> wguard;
        const int i0 = static_cast<int>(b0) * kMr;
        const long hi = b1 * kMr;
        const int i1 = hi < m ? static_cast<int>(hi) : m;
        simd_mm_bt(a.data() + static_cast<std::size_t>(i0) * lda, lda,
                   b.data(), ldb,
                   out.data() + static_cast<std::size_t>(i0) * ldo, ldo,
                   i1 - i0, n, kdim);
      });
      return;
    }
  }
  parallel_for(blocks, par_grain(block_work), [&](long b0, long b1, int) {
    FpuGuard<T> wguard;
    for (long bi = b0; bi < b1; ++bi) {
      const int i0 = static_cast<int>(bi) * kMr;
      const int mr = m - i0 < kMr ? m - i0 : kMr;
      const T* atile = a.data() + static_cast<std::size_t>(i0) * lda;
      for (int j0 = 0; j0 < n; j0 += kNr) {
        const int nr = n - j0 < kNr ? n - j0 : kNr;
        const T* btile = b.data() + static_cast<std::size_t>(j0) * ldb;
        T* otile = out.data() + static_cast<std::size_t>(i0) * ldo + j0;
        if (mr == kMr && nr == kNr) {
          matmul_bt_tile_fixed<T, kMr, kNr>(atile, lda, btile, ldb, otile,
                                            ldo, kdim);
        } else {
          matmul_bt_tile_edge<T>(atile, lda, btile, ldb, otile, ldo, kdim,
                                 mr, nr);
        }
      }
    }
  });
}

template <typename T>
void matmul_at(const Mat<T>& a, const Mat<T>& b, Mat<T>& out) {
  assert(a.rows() == b.rows());
  assert(out.rows() == a.cols() && out.cols() == b.cols());
  FpuGuard<T> guard;
  const int m = a.cols();
  const int n = b.cols();
  const int kdim = a.rows();
  const int lda = a.cols();
  const int ldb = b.cols();
  const int ldo = out.cols();
  const long blocks = (m + kMr - 1) / kMr;
  const long block_work = static_cast<long>(kMr) * n * kdim;
  if constexpr (kSimdRouted<T>) {
    if (simd_active()) {
      parallel_for(blocks, par_grain(block_work), [&](long b0, long b1, int) {
        FpuGuard<T> wguard;
        const int i0 = static_cast<int>(b0) * kMr;
        const long hi = b1 * kMr;
        const int i1 = hi < m ? static_cast<int>(hi) : m;
        // The stripe offsets a by i0 COLUMNS (out-row i reads a's column i).
        simd_mm_at(a.data() + i0, lda, b.data(), ldb,
                   out.data() + static_cast<std::size_t>(i0) * ldo, ldo,
                   i1 - i0, n, kdim);
      });
      return;
    }
  }
  parallel_for(blocks, par_grain(block_work), [&](long b0, long b1, int) {
    FpuGuard<T> wguard;
    for (long bi = b0; bi < b1; ++bi) {
      const int i0 = static_cast<int>(bi) * kMr;
      const int mr = m - i0 < kMr ? m - i0 : kMr;
      for (int j0 = 0; j0 < n; j0 += kNr) {
        const int nr = n - j0 < kNr ? n - j0 : kNr;
        T* otile = out.data() + static_cast<std::size_t>(i0) * ldo + j0;
        if (mr == kMr && nr == kNr) {
          matmul_at_tile_fixed<T, kMr, kNr>(a.data() + i0, lda, b.data() + j0,
                                            ldb, otile, ldo, kdim);
        } else {
          matmul_at_tile_edge<T>(a.data() + i0, lda, b.data() + j0, ldb,
                                 otile, ldo, kdim, mr, nr);
        }
      }
    }
  });
}

template <typename T>
void matmul_naive(const Mat<T>& a, const Mat<T>& b, Mat<T>& out) {
  assert(a.cols() == b.rows());
  assert(out.rows() == a.rows() && out.cols() == b.cols());
  FpuGuard<T> guard;
  out.fill(T{});
  for (int i = 0; i < a.rows(); ++i) {
    const T* arow = a.row(i);
    T* orow = out.row(i);
    for (int k = 0; k < a.cols(); ++k) {
      const T aik = arow[k];
      const T* brow = b.row(k);
      for (int j = 0; j < b.cols(); ++j) {
        orow[j] += aik * brow[j];
      }
    }
  }
}

template <typename T>
void matmul_bt_naive(const Mat<T>& a, const Mat<T>& b, Mat<T>& out) {
  assert(a.cols() == b.cols());
  assert(out.rows() == a.rows() && out.cols() == b.rows());
  FpuGuard<T> guard;
  for (int i = 0; i < a.rows(); ++i) {
    const T* arow = a.row(i);
    T* orow = out.row(i);
    for (int j = 0; j < b.rows(); ++j) {
      const T* brow = b.row(j);
      T acc{};
      for (int k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      orow[j] = acc;
    }
  }
}

template <typename T>
void matmul_at_naive(const Mat<T>& a, const Mat<T>& b, Mat<T>& out) {
  assert(a.rows() == b.rows());
  assert(out.rows() == a.cols() && out.cols() == b.cols());
  FpuGuard<T> guard;
  out.fill(T{});
  for (int k = 0; k < a.rows(); ++k) {
    const T* arow = a.row(k);
    const T* brow = b.row(k);
    for (int i = 0; i < a.cols(); ++i) {
      const T aki = arow[i];
      T* orow = out.row(i);
      for (int j = 0; j < b.cols(); ++j) {
        orow[j] += aki * brow[j];
      }
    }
  }
}

template <typename T>
void add(const Mat<T>& a, const Mat<T>& b, Mat<T>& out) {
  assert(a.same_shape(b) && a.same_shape(out));
  FpuGuard<T> guard;
  parallel_for(static_cast<long>(a.size()), par_grain(1),
               [&](long i0, long i1, int) {
                 FpuGuard<T> wguard;
                 if constexpr (kSimdRouted<T>) {
                   if (simd_active()) {
                     simd_ew_add(a.data() + i0, b.data() + i0,
                                 out.data() + i0, i1 - i0);
                     return;
                   }
                 }
                 for (long i = i0; i < i1; ++i) {
                   out.data()[i] = a.data()[i] + b.data()[i];
                 }
               });
}

template <typename T>
void sub(const Mat<T>& a, const Mat<T>& b, Mat<T>& out) {
  assert(a.same_shape(b) && a.same_shape(out));
  FpuGuard<T> guard;
  parallel_for(static_cast<long>(a.size()), par_grain(1),
               [&](long i0, long i1, int) {
                 FpuGuard<T> wguard;
                 if constexpr (kSimdRouted<T>) {
                   if (simd_active()) {
                     simd_ew_sub(a.data() + i0, b.data() + i0,
                                 out.data() + i0, i1 - i0);
                     return;
                   }
                 }
                 for (long i = i0; i < i1; ++i) {
                   out.data()[i] = a.data()[i] - b.data()[i];
                 }
               });
}

template <typename T>
void hadamard(const Mat<T>& a, const Mat<T>& b, Mat<T>& out) {
  assert(a.same_shape(b) && a.same_shape(out));
  FpuGuard<T> guard;
  parallel_for(static_cast<long>(a.size()), par_grain(1),
               [&](long i0, long i1, int) {
                 FpuGuard<T> wguard;
                 if constexpr (kSimdRouted<T>) {
                   if (simd_active()) {
                     simd_ew_mul(a.data() + i0, b.data() + i0,
                                 out.data() + i0, i1 - i0);
                     return;
                   }
                 }
                 for (long i = i0; i < i1; ++i) {
                   out.data()[i] = a.data()[i] * b.data()[i];
                 }
               });
}

void axpy(double alpha, const MatD& b, MatD& a) {
  assert(a.same_shape(b));
  FpuGuard<double> guard;
  parallel_for(static_cast<long>(a.size()), par_grain(1),
               [&](long i0, long i1, int) {
                 FpuGuard<double> wguard;
                 if (simd_active()) {
                   kml_simd_axpy_f64(alpha, b.data() + i0, a.data() + i0,
                                     i1 - i0);
                   return;
                 }
                 for (long i = i0; i < i1; ++i) {
                   a.data()[i] += alpha * b.data()[i];
                 }
               });
}

template <typename T>
Mat<T> transpose(const Mat<T>& m) {
  Mat<T> out(m.cols(), m.rows());
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) {
      out.at(j, i) = m.at(i, j);
    }
  }
  return out;
}

void scale(MatD& m, double alpha) {
  FpuGuard<double> guard;
  parallel_for(static_cast<long>(m.size()), par_grain(1),
               [&](long i0, long i1, int) {
                 FpuGuard<double> wguard;
                 if (simd_active()) {
                   kml_simd_scale_f64(m.data() + i0, alpha, i1 - i0);
                   return;
                 }
                 for (long i = i0; i < i1; ++i) m.data()[i] *= alpha;
               });
}

void add_bias_row(MatD& a, const MatD& bias) {
  assert(bias.rows() == 1 && bias.cols() == a.cols());
  FpuGuard<double> guard;
  parallel_for(a.rows(), par_grain(a.cols()), [&](long r0, long r1, int) {
    FpuGuard<double> wguard;
    if (simd_active()) {
      for (long i = r0; i < r1; ++i) {
        double* arow = a.row(static_cast<int>(i));
        kml_simd_add_f64(arow, bias.row(0), arow, a.cols());
      }
      return;
    }
    for (long i = r0; i < r1; ++i) {
      double* arow = a.row(static_cast<int>(i));
      for (int j = 0; j < a.cols(); ++j) arow[j] += bias.at(0, j);
    }
  });
}

void col_sums(const MatD& a, MatD& out) {
  assert(out.rows() == 1 && out.cols() == a.cols());
  FpuGuard<double> guard;
  out.fill(0.0);
  for (int i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    for (int j = 0; j < a.cols(); ++j) out.at(0, j) += arow[j];
  }
}

void softmax_rows(const MatD& in, MatD& out) {
  assert(in.same_shape(out));
  FpuGuard<double> guard;
  // exp dominates, so weight a row at ~16 mul-add equivalents per element.
  parallel_for(in.rows(), par_grain(static_cast<long>(in.cols()) * 16),
               [&](long r0, long r1, int) {
                 FpuGuard<double> wguard;
                 for (long i = r0; i < r1; ++i) {
                   math::kml_softmax(in.row(static_cast<int>(i)),
                                     out.row(static_cast<int>(i)), in.cols());
                 }
               });
}

MatI argmax_rows(const MatD& m) {
  MatI out(m.rows(), 1);
  for (int i = 0; i < m.rows(); ++i) {
    const double* row = m.row(i);
    int best = 0;
    for (int j = 1; j < m.cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    out.at(i, 0) = best;
  }
  return out;
}

double frobenius_norm(const MatD& m) {
  FpuGuard<double> guard;
  double acc = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    acc += m.data()[i] * m.data()[i];
  }
  return math::kml_sqrt(acc);
}

// Explicit instantiations for the four supported element types.
#define KML_INSTANTIATE(T)                                      \
  template void matmul<T>(const Mat<T>&, const Mat<T>&, Mat<T>&); \
  template void matmul_bt<T>(const Mat<T>&, const Mat<T>&, Mat<T>&); \
  template void matmul_at<T>(const Mat<T>&, const Mat<T>&, Mat<T>&); \
  template void matmul_naive<T>(const Mat<T>&, const Mat<T>&, Mat<T>&); \
  template void matmul_bt_naive<T>(const Mat<T>&, const Mat<T>&, Mat<T>&); \
  template void matmul_at_naive<T>(const Mat<T>&, const Mat<T>&, Mat<T>&); \
  template void add<T>(const Mat<T>&, const Mat<T>&, Mat<T>&);  \
  template void sub<T>(const Mat<T>&, const Mat<T>&, Mat<T>&);  \
  template void hadamard<T>(const Mat<T>&, const Mat<T>&, Mat<T>&); \
  template Mat<T> transpose<T>(const Mat<T>&);

KML_INSTANTIATE(double)
KML_INSTANTIATE(float)
KML_INSTANTIATE(int)
KML_INSTANTIATE(math::Fixed)
#undef KML_INSTANTIATE

}  // namespace kml::matrix
