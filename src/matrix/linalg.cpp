#include "matrix/linalg.h"

namespace kml::matrix {

template <typename T>
void matmul(const Mat<T>& a, const Mat<T>& b, Mat<T>& out) {
  assert(a.cols() == b.rows());
  assert(out.rows() == a.rows() && out.cols() == b.cols());
  FpuGuard<T> guard;
  out.fill(T{});
  for (int i = 0; i < a.rows(); ++i) {
    const T* arow = a.row(i);
    T* orow = out.row(i);
    for (int k = 0; k < a.cols(); ++k) {
      const T aik = arow[k];
      const T* brow = b.row(k);
      for (int j = 0; j < b.cols(); ++j) {
        orow[j] += aik * brow[j];
      }
    }
  }
}

template <typename T>
void matmul_bt(const Mat<T>& a, const Mat<T>& b, Mat<T>& out) {
  assert(a.cols() == b.cols());
  assert(out.rows() == a.rows() && out.cols() == b.rows());
  FpuGuard<T> guard;
  for (int i = 0; i < a.rows(); ++i) {
    const T* arow = a.row(i);
    T* orow = out.row(i);
    for (int j = 0; j < b.rows(); ++j) {
      const T* brow = b.row(j);
      T acc{};
      for (int k = 0; k < a.cols(); ++k) acc += arow[k] * brow[k];
      orow[j] = acc;
    }
  }
}

template <typename T>
void matmul_at(const Mat<T>& a, const Mat<T>& b, Mat<T>& out) {
  assert(a.rows() == b.rows());
  assert(out.rows() == a.cols() && out.cols() == b.cols());
  FpuGuard<T> guard;
  out.fill(T{});
  for (int k = 0; k < a.rows(); ++k) {
    const T* arow = a.row(k);
    const T* brow = b.row(k);
    for (int i = 0; i < a.cols(); ++i) {
      const T aki = arow[i];
      T* orow = out.row(i);
      for (int j = 0; j < b.cols(); ++j) {
        orow[j] += aki * brow[j];
      }
    }
  }
}

template <typename T>
void add(const Mat<T>& a, const Mat<T>& b, Mat<T>& out) {
  assert(a.same_shape(b) && a.same_shape(out));
  FpuGuard<T> guard;
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.data()[i] = a.data()[i] + b.data()[i];
  }
}

template <typename T>
void sub(const Mat<T>& a, const Mat<T>& b, Mat<T>& out) {
  assert(a.same_shape(b) && a.same_shape(out));
  FpuGuard<T> guard;
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.data()[i] = a.data()[i] - b.data()[i];
  }
}

template <typename T>
void hadamard(const Mat<T>& a, const Mat<T>& b, Mat<T>& out) {
  assert(a.same_shape(b) && a.same_shape(out));
  FpuGuard<T> guard;
  for (std::size_t i = 0; i < a.size(); ++i) {
    out.data()[i] = a.data()[i] * b.data()[i];
  }
}

void axpy(double alpha, const MatD& b, MatD& a) {
  assert(a.same_shape(b));
  FpuGuard<double> guard;
  for (std::size_t i = 0; i < a.size(); ++i) {
    a.data()[i] += alpha * b.data()[i];
  }
}

template <typename T>
Mat<T> transpose(const Mat<T>& m) {
  Mat<T> out(m.cols(), m.rows());
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) {
      out.at(j, i) = m.at(i, j);
    }
  }
  return out;
}

void scale(MatD& m, double alpha) {
  FpuGuard<double> guard;
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] *= alpha;
}

void add_bias_row(MatD& a, const MatD& bias) {
  assert(bias.rows() == 1 && bias.cols() == a.cols());
  FpuGuard<double> guard;
  for (int i = 0; i < a.rows(); ++i) {
    double* arow = a.row(i);
    for (int j = 0; j < a.cols(); ++j) arow[j] += bias.at(0, j);
  }
}

void col_sums(const MatD& a, MatD& out) {
  assert(out.rows() == 1 && out.cols() == a.cols());
  FpuGuard<double> guard;
  out.fill(0.0);
  for (int i = 0; i < a.rows(); ++i) {
    const double* arow = a.row(i);
    for (int j = 0; j < a.cols(); ++j) out.at(0, j) += arow[j];
  }
}

void softmax_rows(const MatD& in, MatD& out) {
  assert(in.same_shape(out));
  FpuGuard<double> guard;
  for (int i = 0; i < in.rows(); ++i) {
    math::kml_softmax(in.row(i), out.row(i), in.cols());
  }
}

MatI argmax_rows(const MatD& m) {
  MatI out(m.rows(), 1);
  for (int i = 0; i < m.rows(); ++i) {
    const double* row = m.row(i);
    int best = 0;
    for (int j = 1; j < m.cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    out.at(i, 0) = best;
  }
  return out;
}

double frobenius_norm(const MatD& m) {
  FpuGuard<double> guard;
  double acc = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    acc += m.data()[i] * m.data()[i];
  }
  return math::kml_sqrt(acc);
}

// Explicit instantiations for the four supported element types.
#define KML_INSTANTIATE(T)                                      \
  template void matmul<T>(const Mat<T>&, const Mat<T>&, Mat<T>&); \
  template void matmul_bt<T>(const Mat<T>&, const Mat<T>&, Mat<T>&); \
  template void matmul_at<T>(const Mat<T>&, const Mat<T>&, Mat<T>&); \
  template void add<T>(const Mat<T>&, const Mat<T>&, Mat<T>&);  \
  template void sub<T>(const Mat<T>&, const Mat<T>&, Mat<T>&);  \
  template void hadamard<T>(const Mat<T>&, const Mat<T>&, Mat<T>&); \
  template Mat<T> transpose<T>(const Mat<T>&);

KML_INSTANTIATE(double)
KML_INSTANTIATE(float)
KML_INSTANTIATE(int)
KML_INSTANTIATE(math::Fixed)
#undef KML_INSTANTIATE

}  // namespace kml::matrix
