#include "readahead/tuner.h"

#include "observe/flight_recorder.h"
#include "observe/metrics.h"
#include "portability/kml_lib.h"
#include "portability/log.h"

#include <cstdio>

namespace kml::readahead {

// Per-class decision counter name ("readahead.decision.<workload>"); the
// registry copies the name at registration, so the stack buffer is fine.
void count_decision(int cls) {
  if (cls < 0 || cls >= workloads::kNumTrainingClasses) return;
  char name[48];
  std::snprintf(name, sizeof(name), "readahead.decision.%s",
                workloads::workload_name(
                    static_cast<workloads::WorkloadType>(cls)));
  observe::counter_add(name);
}

ReadaheadTuner::ReadaheadTuner(sim::StorageStack& stack, PredictFn predict,
                               const TunerConfig& config)
    : stack_(stack),
      predict_(std::move(predict)),
      config_(config),
      buffer_(config.buffer_capacity, config.buffer_shards),
      next_boundary_(stack.clock().now_ns() + config.period_ns) {
  // The data-collection hook: the inline, lock-free, FPU-free part of the
  // loop. It only converts the tracepoint payload and pushes it.
  hook_handle_ = stack_.tracepoints().register_hook(
      [this](const sim::TraceEvent& ev) {
        buffer_.push(data::TraceRecord{
            ev.inode, ev.pgoff, ev.time_ns,
            static_cast<std::uint8_t>(ev.type)});
      },
      sim::kKmlCollectionTracepoints);
}

ReadaheadTuner::~ReadaheadTuner() {
  stack_.tracepoints().unregister(hook_handle_);
}

void ReadaheadTuner::on_tick(std::uint64_t now_ns) {
  // Continuous drain — the role of the asynchronous training thread in a
  // kernel deployment. Keeping up with the producer per tick is what lets
  // a modest circular buffer survive hundreds of thousands of records per
  // second without drops.
  data::TraceRecord rec;
  while (buffer_.pop(rec)) window_.push_back(rec);
  buffer_.publish_metrics();

  while (now_ns >= next_boundary_) {
    close_window();
    next_boundary_ += config_.period_ns;
  }
}

bool ReadaheadTuner::health_allows_actuation() {
  if (config_.health == nullptr) return true;
  const runtime::HealthState state = config_.health->state();
  if (state == runtime::HealthState::kHealthy) {
    degraded_active_ = false;
    return true;
  }
  // DEGRADED or FAILED: hold the vanilla setting. The revert is done once
  // on entry so an operator (or test) poking the knob mid-degradation is
  // not fought every window.
  if (!degraded_active_) {
    degraded_active_ = true;
    stack_.block_layer().set_readahead_kb(config_.vanilla_ra_kb);
    KML_WARN("tuner: health %s — reverting to vanilla readahead (%u KB)",
             runtime::health_state_name(state), config_.vanilla_ra_kb);
  }
  return false;
}

void ReadaheadTuner::close_window() {
  std::vector<data::TraceRecord> window;
  window.swap(window_);

  TimelinePoint point;
  point.window = timeline_.size();
  point.events = window.size();

  observe::counter_add(observe::kMetricRaWindows);

  if (!health_allows_actuation()) {
    // Model quarantined: no inference, no CPU charge, vanilla readahead in
    // force. The window's records are discarded (the extractor would only
    // feed a model nobody trusts right now).
    point.predicted_class = -1;
    point.ra_kb = stack_.block_layer().readahead_kb();
    point.degraded = true;
    degraded_windows_ += 1;
    observe::counter_add(observe::kMetricRaDegradedWindows);
    timeline_.push_back(point);
    return;
  }

  if (window.empty()) {
    // Idle second: keep the current setting.
    point.predicted_class = -1;
    point.ra_kb = stack_.block_layer().readahead_kb();
    timeline_.push_back(point);
    return;
  }

  // Per-stage attribution (telemetry v3), same taxonomy as the fleet
  // pipeline: coalesce = feature extraction over the window, infer = the
  // model call, decide = actuation. Once-per-window clock reads on a cold
  // path, by-name lookup like the counters above. Wall clock, not the
  // simulator's virtual clock — this measures the tuner's own CPU cost.
  const bool obs = observe::enabled();
  const std::uint64_t t0 = obs ? kml_now_ns() : 0;
  const FeatureVector features = extractor_.extract_selected(
      window, stack_.block_layer().readahead_kb());
  const std::uint64_t t1 = obs ? kml_now_ns() : 0;
  int cls = -1;
  if (config_.batch_predict) {
    config_.batch_predict(&features, 1, &cls);
  } else {
    cls = predict_(features);
  }
  stack_.charge_cpu_ns(config_.inference_cpu_ns);
  const std::uint64_t t2 = obs ? kml_now_ns() : 0;

  std::uint32_t ra_kb = stack_.block_layer().readahead_kb();
  if (cls >= 0 && cls < workloads::kNumTrainingClasses) {
    ra_kb = config_.class_ra_kb[static_cast<std::size_t>(cls)];
    stack_.block_layer().set_readahead_kb(ra_kb);
    count_decision(cls);
    observe::gauge_set(observe::kMetricRaSetKb, ra_kb);
    KML_EVENT(observe::EventId::kTunerDecision,
              static_cast<std::uint64_t>(cls), ra_kb);
  }
  if (obs) {
    observe::hist_record(observe::kMetricRaStageCoalesceNs, t1 - t0);
    observe::hist_record(observe::kMetricRaStageInferNs, t2 - t1);
    observe::hist_record(observe::kMetricRaStageDecideNs, kml_now_ns() - t2);
  }
  point.predicted_class = cls;
  point.ra_kb = ra_kb;
  timeline_.push_back(point);
}

}  // namespace kml::readahead
