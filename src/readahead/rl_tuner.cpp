#include "readahead/rl_tuner.h"

#include "math/approx.h"
#include "observe/flight_recorder.h"
#include "observe/metrics.h"

#include <cassert>

namespace kml::readahead {
namespace {

// State grid: 5 pattern buckets x 3 rate buckets (log-domain features).
constexpr int kPatternBuckets = 5;
constexpr int kRateBuckets = 3;

int pattern_bucket(double log_meandiff) {
  if (log_meandiff < 1.0) return 0;   // strictly sequential
  if (log_meandiff < 3.0) return 1;   // block-local (reverse-style)
  if (log_meandiff < 6.0) return 2;   // strided / mixed
  if (log_meandiff < 9.0) return 3;   // random-ish
  return 4;                           // very scattered
}

int rate_bucket(double log_count) {
  if (log_count < 10.0) return 0;
  if (log_count < 12.0) return 1;
  return 2;
}

}  // namespace

QLearningTuner::QLearningTuner(sim::StorageStack& stack,
                               const RlConfig& config)
    : QLearningTuner(stack, config, [&stack](std::uint32_t kb) {
        stack.block_layer().set_readahead_kb(kb);
      }) {}

QLearningTuner::QLearningTuner(sim::StorageStack& stack,
                               const RlConfig& config, Actuator actuate)
    : stack_(stack),
      config_(config),
      actuate_(std::move(actuate)),
      buffer_(config.buffer_capacity),
      rng_(config.seed),
      q_(static_cast<std::size_t>(kPatternBuckets * kRateBuckets) *
             config.actions_kb.size(),
         0.0),
      visits_(q_.size(), 0),
      next_boundary_(stack.clock().now_ns() + config.period_ns),
      epsilon_(config.epsilon) {
  assert(!config_.actions_kb.empty());
  hook_handle_ = stack_.tracepoints().register_hook(
      [this](const sim::TraceEvent& ev) {
        buffer_.push(data::TraceRecord{
            ev.inode, ev.pgoff, ev.time_ns,
            static_cast<std::uint8_t>(ev.type)});
      },
      sim::kKmlCollectionTracepoints);
}

QLearningTuner::~QLearningTuner() {
  stack_.tracepoints().unregister(hook_handle_);
}

int QLearningTuner::state_count() const {
  return kPatternBuckets * kRateBuckets;
}

int QLearningTuner::discretize(const FeatureVector& features) {
  // features[2] = log mean |Δoffset| (pattern), features[0] = log rate.
  return pattern_bucket(features[2]) * kRateBuckets +
         rate_bucket(features[0]);
}

double& QLearningTuner::q_at(int state, int action) {
  return q_[static_cast<std::size_t>(state) * config_.actions_kb.size() +
            static_cast<std::size_t>(action)];
}

int QLearningTuner::greedy_action(int state) const {
  const std::size_t base =
      static_cast<std::size_t>(state) * config_.actions_kb.size();
  int best = 0;
  for (std::size_t a = 1; a < config_.actions_kb.size(); ++a) {
    if (q_[base + a] > q_[base + static_cast<std::size_t>(best)]) {
      best = static_cast<int>(a);
    }
  }
  return best;
}

void QLearningTuner::on_tick(std::uint64_t now_ns,
                             std::uint64_t ops_completed) {
  data::TraceRecord rec;
  while (buffer_.pop(rec)) window_.push_back(rec);
  buffer_.publish_metrics();
  while (now_ns >= next_boundary_) {
    close_window(ops_completed);
    next_boundary_ += config_.period_ns;
  }
}

void QLearningTuner::close_window(std::uint64_t ops_completed) {
  std::vector<data::TraceRecord> window;
  window.swap(window_);

  const double reward =
      static_cast<double>(ops_completed - prev_ops_total_);
  prev_ops_total_ = ops_completed;

  RlTimelinePoint point;
  point.window = timeline_.size();
  point.reward = reward;
  point.epsilon = epsilon_;

  if (window.empty()) {
    point.state = -1;
    point.action = -1;
    point.ra_kb = stack_.block_layer().readahead_kb();
    timeline_.push_back(point);
    return;
  }

  const FeatureVector features = extractor_.extract_selected(
      window, stack_.block_layer().readahead_kb());
  const int state = discretize(features);

  // Q update for the transition that just finished: the action taken last
  // window earned `reward` and landed us in `state`. The first visit to a
  // (state, action) pair installs the observed return directly — with
  // zero-initialized Q and incremental updates, a single early sample of a
  // mediocre action would otherwise dominate the table forever.
  if (prev_state_ >= 0 && prev_action_ >= 0) {
    const double best_next = q_at(state, greedy_action(state));
    const double target = reward + config_.gamma * best_next;
    double& q = q_at(prev_state_, prev_action_);
    std::uint32_t& visits = visits_[static_cast<std::size_t>(prev_state_) *
                                        config_.actions_kb.size() +
                                    static_cast<std::size_t>(prev_action_)];
    if (visits == 0) {
      q = target;
    } else {
      q += config_.alpha * (target - q);
    }
    ++visits;
  }

  // Action selection: forced exploration of never-tried actions in this
  // state first, then epsilon-greedy.
  int action = -1;
  for (std::size_t a = 0; a < config_.actions_kb.size(); ++a) {
    if (visits_[static_cast<std::size_t>(state) * config_.actions_kb.size() +
                a] == 0) {
      action = static_cast<int>(a);
      break;
    }
  }
  if (action < 0) {
    const int greedy = greedy_action(state);
    if (rng_.next_double() < epsilon_) {
      if (config_.local_exploration) {
        // Step to a neighbour of the greedy action (clamped at the ends).
        const int dir = rng_.next_below(2) == 0 ? -1 : 1;
        action = greedy + dir;
        if (action < 0) action = 1;
        if (action >= action_count()) action = action_count() - 2;
        if (action < 0) action = 0;  // single-action degenerate set
      } else {
        action =
            static_cast<int>(rng_.next_below(config_.actions_kb.size()));
      }
    } else {
      action = greedy;
    }
  }
  epsilon_ = math::kml_max(epsilon_ * config_.epsilon_decay,
                           config_.epsilon_min);

  const std::uint32_t ra_kb =
      config_.actions_kb[static_cast<std::size_t>(action)];
  actuate_(ra_kb);
  observe::counter_add("readahead.rl.actuations");
  observe::gauge_set(observe::kMetricRaSetKb, ra_kb);
  KML_EVENT(observe::EventId::kRlTunerDecision,
            static_cast<std::uint64_t>(action), ra_kb);
  stack_.charge_cpu_ns(2'000);  // table lookup + update: cheap

  prev_state_ = state;
  prev_action_ = action;
  point.state = state;
  point.action = action;
  point.ra_kb = ra_kb;
  timeline_.push_back(point);
}

}  // namespace kml::readahead
