// features.h — the readahead model's feature pipeline (§4).
//
// "We tried a total of eight features which we selected based on our domain
// expertise... We then experimentally narrowed them down to just five
// features that had the most predictive accuracy, also confirmed using
// Pearson correlation analysis."
//
// Candidate features (window = one second of trace records):
//   0 number of tracepoints in the window              (selected)
//   1 cumulative moving average of page offsets        (selected)
//   2 cumulative moving standard deviation of offsets
//   3 mean |Δ page offset| between consecutive records (selected)
//   4 current readahead value, KB                      (selected)
//   5 fraction of write (writeback_dirty_page) records
//   6 distinct inodes touched in the window            (selected)
//   7 maximum |Δ page offset| in the window
//
// "Cumulative" statistics run from extractor creation (module load), not
// per window — the paper's CMA/CMSD features. Z-scoring happens later (the
// normalizer ships inside the model file).
//
// Reproduction deviation (documented in DESIGN.md): the paper's selected
// five are {0,1,2,3,4}. Re-running the selection analysis on the simulated
// stack keeps the distinct-inode count (6) and drops the cumulative stddev
// (2): the stddev is nearly collinear with the mean, while the inode count
// is the only *scale-invariant, bounded* signal separating write-mixed
// workloads (which also touch the WAL file) from read-only random ones —
// the write fraction (5) has near-zero variance in training, so its
// z-scores explode on unseen write intensities.
#pragma once

#include "data/windower.h"
#include "math/stats.h"

#include <array>
#include <cstdint>
#include <vector>

namespace kml::readahead {

inline constexpr int kNumCandidateFeatures = 8;
inline constexpr int kNumSelectedFeatures = 5;

using CandidateVector = std::array<double, kNumCandidateFeatures>;
using FeatureVector = std::array<double, kNumSelectedFeatures>;

class FeatureExtractor {
 public:
  // Compute the candidate vector for one window and fold the window into
  // the cumulative state.
  CandidateVector extract(const std::vector<data::TraceRecord>& window,
                          std::uint32_t current_ra_kb);

  // Reduce candidates to the selected five, in model-input order:
  //   [0] event count, [1] cumulative offset mean, [2] mean |Δ offset|,
  //   [3] distinct inodes, [4] current readahead KB.
  static FeatureVector select(const CandidateVector& all);

  // log(1+x) on the heavy-tailed candidates (all but the write fraction).
  // Event counts and offset statistics span an order of magnitude between
  // NVMe and SATA for the same workload; without this compression a model
  // trained on NVMe does not transfer to SATA (the paper's key evaluation
  // protocol) — bench_ablation quantifies the difference.
  static CandidateVector log_compress(const CandidateVector& all);

  // The model-input pipeline: extract -> log-compress -> select.
  FeatureVector extract_selected(const std::vector<data::TraceRecord>& window,
                                 std::uint32_t current_ra_kb) {
    return select(log_compress(extract(window, current_ra_kb)));
  }

  // Forget all cumulative state (fresh module load).
  void reset();

 private:
  math::RunningStats cumulative_offsets_;
  bool have_prev_ = false;
  std::uint64_t prev_pgoff_ = 0;
};

}  // namespace kml::readahead
