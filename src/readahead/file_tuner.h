// file_tuner.h — per-file readahead tuning.
//
// The paper's actuation path updates "ra_pages for open files" (Figure 1) —
// per-file state, not one global knob. That granularity is what saves mixed
// tenants: when a sequential scan and a random-read workload share the
// machine, any single readahead value must sacrifice one of them. The
// PerFileTuner demultiplexes the tracepoint stream by inode, runs the same
// classifier per file, and actuates each struct file independently.
#pragma once

#include "data/sharded_buffer.h"
#include "readahead/features.h"
#include "readahead/tuner.h"
#include "sim/stack.h"

#include <unordered_map>
#include <vector>

namespace kml::readahead {

struct FileDecision {
  std::uint64_t inode;
  int predicted_class;
  std::uint32_t ra_kb;
  std::uint64_t events;
};

class PerFileTuner {
 public:
  // `min_events`: files with fewer records in a window are left alone
  // (too little signal; also skips cold/incidental files like the WAL
  // between group commits).
  PerFileTuner(sim::StorageStack& stack, ReadaheadTuner::PredictFn predict,
               const TunerConfig& config, std::uint64_t min_events = 64);
  ~PerFileTuner();

  PerFileTuner(const PerFileTuner&) = delete;
  PerFileTuner& operator=(const PerFileTuner&) = delete;

  void on_tick(std::uint64_t now_ns);

  // Decisions made in the most recently closed window.
  const std::vector<FileDecision>& last_window_decisions() const {
    return last_decisions_;
  }
  std::uint64_t windows() const { return windows_; }
  std::uint64_t dropped_records() const { return buffer_.dropped(); }

  // Windows spent with actuation suspended by the health guard.
  std::uint64_t degraded_windows() const { return degraded_windows_; }

 private:
  void close_window();

  struct FileState {
    FeatureExtractor extractor;
    std::vector<data::TraceRecord> window;
    bool actuated = false;  // we changed this inode's ra from the default
  };

  sim::StorageStack& stack_;
  ReadaheadTuner::PredictFn predict_;
  TunerConfig config_;
  std::uint64_t min_events_;
  data::ShardedBuffer<data::TraceRecord> buffer_;
  std::unordered_map<std::uint64_t, FileState> per_file_;
  int hook_handle_;
  std::uint64_t next_boundary_;
  std::uint64_t windows_ = 0;
  std::uint64_t degraded_windows_ = 0;
  bool degraded_active_ = false;
  std::vector<FileDecision> last_decisions_;
  // Window-scoped batch staging, reused across windows: feature rows for
  // every eligible inode (contiguous, ready for one batched inference) and
  // the class ids coming back.
  std::vector<FeatureVector> batch_features_;
  std::vector<int> batch_classes_;
};

}  // namespace kml::readahead
