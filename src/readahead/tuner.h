// tuner.h — the closed loop of Figure 1: trace -> features -> inference ->
// readahead actuation.
//
// Execution flow per §3.3: (1) data-collection hooks on the memory-
// management tracepoints push records into the lock-free circular buffer;
// (2) once per second the records are windowed, processed, and normalized;
// (3-4) the features go to the KML engine for inference; (5) the KML
// application sets the new readahead size through the block layer, which
// updates ra_pages in every open struct file. Changing readahead changes
// future cache behaviour, which changes future features — the closed
// circuit the paper describes.
#pragma once

#include "data/sharded_buffer.h"
#include "readahead/features.h"
#include "runtime/health.h"
#include "sim/stack.h"
#include "workloads/drivers.h"

#include <array>
#include <functional>
#include <vector>

namespace kml::readahead {

// Bump the per-class decision counter ("readahead.decision.<workload>") in
// the metrics registry; shared by the global and per-file tuners. Ignores
// out-of-range classes.
void count_decision(int cls);

// Batched classifier: `count` raw (un-normalized) feature rows, contiguous
// in memory, classified in one pass; class ids land in classes_out. The
// per-file tuner collects every eligible inode's features in a window and
// classifies them with a single call (one network forward pass instead of
// one per file); pipeline.h::make_engine_batch_predictor adapts a runtime
// Engine to this signature.
using BatchPredictFn =
    std::function<void(const FeatureVector* features, int count,
                       int* classes_out)>;

struct TunerConfig {
  // Actuation table: predicted class -> readahead KB. Built per device from
  // the §4 workload study (pipeline.h::best_ra_table).
  std::array<std::uint32_t, workloads::kNumTrainingClasses> class_ra_kb{
      1024, 16, 1024, 32};
  std::uint64_t period_ns = sim::kNsPerSec;  // paper: inference once per sec
  std::size_t buffer_capacity = 1 << 16;
  // Collection-ring shards (1 = classic single SPSC ring). Per-CPU
  // collection hooks give each producer its own shard; the window drain
  // aggregates across shards round-robin.
  unsigned buffer_shards = 1;
  // Inference cost charged to the virtual clock each window — the paper
  // measures 21 us per inference.
  std::uint64_t inference_cpu_ns = 21'000;
  // Graceful degradation: while `health` reports DEGRADED or FAILED the
  // tuner stops actuating model predictions and pins the readahead back to
  // `vanilla_ra_kb` (the paper's control arm — the stock kernel heuristic
  // at the device default). nullptr = always trust the model. The monitor
  // must outlive the tuner.
  const runtime::HealthMonitor* health = nullptr;
  std::uint32_t vanilla_ra_kb = 128;
  // Optional batched classifier. When set, tuners prefer it over the
  // per-sample PredictFn; the virtual-clock CPU charge stays per-sample
  // (inference_cpu_ns each), so timelines are identical either way.
  BatchPredictFn batch_predict;
};

struct TimelinePoint {
  std::uint64_t window;        // virtual second index
  int predicted_class;         // -1 when the window had no events
  std::uint32_t ra_kb;         // readahead in force after actuation
  std::uint64_t events;        // trace records in the window
  bool degraded = false;       // health guard held the vanilla fallback
};

class ReadaheadTuner {
 public:
  // Classifier: raw (un-normalized) selected features -> class id.
  using PredictFn = std::function<int(const FeatureVector&)>;

  ReadaheadTuner(sim::StorageStack& stack, PredictFn predict,
                 const TunerConfig& config);
  ~ReadaheadTuner();

  ReadaheadTuner(const ReadaheadTuner&) = delete;
  ReadaheadTuner& operator=(const ReadaheadTuner&) = delete;

  // Drive from the workload's per-op tick; closes windows and actuates on
  // every 1 s boundary crossed.
  void on_tick(std::uint64_t now_ns);

  const std::vector<TimelinePoint>& timeline() const { return timeline_; }
  std::uint64_t dropped_records() const { return buffer_.dropped(); }
  std::uint64_t windows() const { return timeline_.size(); }

  // Windows spent in the vanilla fallback (health guard active) — the
  // safety-net dwell time evaluate_closed_loop reports.
  std::uint64_t degraded_windows() const { return degraded_windows_; }

 private:
  void close_window();
  bool health_allows_actuation();

  sim::StorageStack& stack_;
  PredictFn predict_;
  TunerConfig config_;
  data::ShardedBuffer<data::TraceRecord> buffer_;
  std::vector<data::TraceRecord> window_;  // drained records, current window
  FeatureExtractor extractor_;
  int hook_handle_;
  std::uint64_t next_boundary_;
  std::vector<TimelinePoint> timeline_;
  std::uint64_t degraded_windows_ = 0;
  bool degraded_active_ = false;  // vanilla fallback currently pinned
};

}  // namespace kml::readahead
