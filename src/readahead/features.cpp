#include "readahead/features.h"

#include "math/approx.h"

#include <unordered_set>

namespace kml::readahead {

CandidateVector FeatureExtractor::extract(
    const std::vector<data::TraceRecord>& window,
    std::uint32_t current_ra_kb) {
  CandidateVector f{};

  std::uint64_t writes = 0;
  double abs_diff_sum = 0.0;
  double abs_diff_max = 0.0;
  std::uint64_t diff_count = 0;
  std::unordered_set<std::uint64_t> inodes;

  for (const data::TraceRecord& rec : window) {
    cumulative_offsets_.add(static_cast<double>(rec.pgoff));
    if (rec.kind != 0) ++writes;
    inodes.insert(rec.inode);
    if (have_prev_) {
      const double d = math::kml_abs(static_cast<double>(rec.pgoff) -
                                     static_cast<double>(prev_pgoff_));
      abs_diff_sum += d;
      abs_diff_max = math::kml_max(abs_diff_max, d);
      ++diff_count;
    }
    prev_pgoff_ = rec.pgoff;
    have_prev_ = true;
  }

  f[0] = static_cast<double>(window.size());
  f[1] = cumulative_offsets_.mean();
  f[2] = cumulative_offsets_.stddev();
  f[3] = diff_count == 0 ? 0.0
                         : abs_diff_sum / static_cast<double>(diff_count);
  f[4] = static_cast<double>(current_ra_kb);
  f[5] = window.empty()
             ? 0.0
             : static_cast<double>(writes) / static_cast<double>(window.size());
  f[6] = static_cast<double>(inodes.size());
  f[7] = abs_diff_max;
  return f;
}

FeatureVector FeatureExtractor::select(const CandidateVector& all) {
  return FeatureVector{all[0], all[1], all[3], all[6], all[4]};
}

CandidateVector FeatureExtractor::log_compress(const CandidateVector& all) {
  CandidateVector out = all;
  for (int i = 0; i < kNumCandidateFeatures; ++i) {
    if (i == 5) continue;  // write fraction is already in [0, 1]
    out[static_cast<std::size_t>(i)] =
        math::kml_log(1.0 + out[static_cast<std::size_t>(i)]);
  }
  return out;
}

void FeatureExtractor::reset() {
  cumulative_offsets_.reset();
  have_prev_ = false;
  prev_pgoff_ = 0;
}

}  // namespace kml::readahead
