// pipeline.h — end-to-end experiment harness for the readahead case study.
//
// Everything §4 does, as reusable functions:
//   * collect_training_data — run the four training workloads on NVMe under
//     several readahead settings, window the traces, extract features
//     (the user-space training path of §3.3);
//   * readahead_sweep / best_ra_table — the "Studying the problem" study:
//     throughput for each (workload, readahead, device), and the per-class
//     optimum mapping the tuner actuates;
//   * evaluate_closed_loop — vanilla vs KML-tuned runs of any workload on
//     any device, with per-second series for the Figure 2 timeline.
#pragma once

#include "data/dataset.h"
#include "readahead/file_tuner.h"
#include "readahead/rl_tuner.h"
#include "readahead/tuner.h"
#include "runtime/engine.h"
#include "sim/trace_io.h"
#include "workloads/drivers.h"

#include <vector>

namespace kml::readahead {

// --- Engine -> classifier adapters -------------------------------------------

// Per-sample classifier over a runtime Engine (must be in inference mode
// and outlive the returned function).
ReadaheadTuner::PredictFn make_engine_predictor(runtime::Engine& engine);

// Batched classifier over Engine::infer_batch: a whole window of feature
// rows classified in one forward pass. Plug into TunerConfig::batch_predict.
BatchPredictFn make_engine_batch_predictor(runtime::Engine& engine);

// Shared experiment scale. The defaults are chosen so that the database is
// ~16x the page cache (misses dominate for uniform-random reads) while runs
// stay fast enough to sweep.
struct ExperimentConfig {
  sim::DeviceConfig device = sim::nvme_config();
  std::uint64_t cache_pages = 32'768;  // 128 MiB
  std::uint64_t num_keys = 2'000'000;  // x 1 KiB entries = ~2 GiB database
  std::uint32_t entry_bytes = 1024;
  std::uint32_t block_pages = 16;      // 64 KiB data blocks
  std::uint64_t seed = 7;
};

kv::KVConfig make_kv_config(const ExperimentConfig& config);
sim::StackConfig make_stack_config(const ExperimentConfig& config);

// --- Training-data collection ------------------------------------------------

struct TraceGenConfig {
  ExperimentConfig base;  // device should stay NVMe: the paper trains on
                          // NVMe only and evaluates transfer to SATA
  std::vector<std::uint32_t> ra_values_kb{8, 32, 64, 128, 256, 512};
  std::uint64_t seconds_per_run = 12;
  bool skip_first_window = true;  // cold-cache second is atypical
  // Emit all 8 candidate features instead of the paper's selected 5
  // (feature-selection ablation; see bench_ablation).
  bool all_candidate_features = false;
  // log(1+x) compression of heavy-tailed features (the default model-input
  // pipeline); disable only for the ablation.
  bool log_features = true;
};

// Labels are workloads::WorkloadType casts (0..3). Features are the paper's
// five selected features, un-normalized.
data::Dataset collect_training_data(const TraceGenConfig& config);

// Offline feature extraction from a trace capture — the paper's actual
// LTTng flow: record tracepoints to a file during the run, window and
// featurize later in user space. `ra_kb` is the readahead setting in force
// during the capture (trace files carry access records only), `label` the
// workload class. Consumes the reader from its current position.
data::Dataset dataset_from_trace(sim::TraceReader& reader, int label,
                                 std::uint32_t ra_kb,
                                 std::uint64_t period_ns = sim::kNsPerSec,
                                 bool skip_first_window = true);

// --- Sequence datasets (for the RNN/LSTM future-work experiment) -------------

// Labeled fixed-length sequences of sub-second feature vectors: the input
// the paper's planned RNN/LSTM models (§6) would consume. Each sequence is
// (steps x kNumSelectedFeatures), un-normalized.
struct SequenceDataset {
  std::vector<matrix::MatD> sequences;
  std::vector<int> labels;

  int size() const { return static_cast<int>(labels.size()); }
};

struct SequenceGenConfig {
  ExperimentConfig base;
  std::vector<std::uint32_t> ra_values_kb{64, 128};
  std::uint64_t sub_window_ms = 200;  // finer than the 1 s tuner window
  int steps_per_sequence = 5;         // 5 x 200 ms = one tuner period
  std::uint64_t seconds_per_run = 12;
};

SequenceDataset collect_sequence_data(const SequenceGenConfig& config);

// --- The readahead study (§4 "Studying the problem") -------------------------

struct SweepPoint {
  workloads::WorkloadType workload;
  std::uint32_t ra_kb;
  double ops_per_sec;
};

// The paper's 20 readahead sizes, 8..1024 KB.
std::vector<std::uint32_t> paper_ra_values();

std::vector<SweepPoint> readahead_sweep(
    const ExperimentConfig& config,
    const std::vector<workloads::WorkloadType>& workload_list,
    const std::vector<std::uint32_t>& ra_values_kb, std::uint64_t seconds);

// Best readahead per training class, extracted from sweep points.
std::array<std::uint32_t, workloads::kNumTrainingClasses> best_ra_table(
    const std::vector<SweepPoint>& sweep);

// --- Closed-loop evaluation (Table 2 / Figure 2) -----------------------------

struct EvalOutcome {
  double vanilla_ops_per_sec = 0.0;
  double kml_ops_per_sec = 0.0;
  double speedup = 0.0;  // kml / vanilla
  std::vector<double> vanilla_per_second;  // ops completed in each second
  std::vector<double> kml_per_second;
  std::vector<TimelinePoint> timeline;     // tuner decisions (KML run)
  std::uint64_t dropped_records = 0;
  // Windows the tuner spent in the vanilla fallback because the health
  // guard reported DEGRADED/FAILED (0 unless tuner_config.health is set).
  std::uint64_t degraded_windows = 0;
};

// `kml_extra_tick`, when set, is invoked with the virtual clock after the
// tuner's own tick during the KML run only — the hook tests and benches use
// to inject faults (e.g. flip the health monitor to FAILED at second N,
// roll back at second M) while the closed loop runs.
EvalOutcome evaluate_closed_loop(const ExperimentConfig& config,
                                 workloads::WorkloadType workload,
                                 const ReadaheadTuner::PredictFn& predictor,
                                 const TunerConfig& tuner_config,
                                 std::uint64_t seconds,
                                 const workloads::TickFn& kml_extra_tick = {});

// --- Mixed tenants: global vs per-file actuation ------------------------------

// Two databases share the storage stack: tenant A runs a sequential scan,
// tenant B uniform-random point reads. Any single readahead value must
// sacrifice one of them; per-file actuation (Figure 1's "update ra_pages
// for open files") serves both. This experiment measures each tenant's
// throughput under the three tuning modes.
enum class TuningMode { kVanilla, kGlobal, kPerFile };

// Throughputs are normalized by the virtual time each tenant itself
// consumed (ops per second *of that tenant's own I/O+CPU time*) — in an
// interleaved loop the raw wall rates of the two tenants are locked
// together, so per-tenant efficiency is the observable that exposes the
// global-knob tradeoff.
struct MixedTenantResult {
  double scan_entries_per_sec = 0.0;  // per scan-consumed second
  double get_ops_per_sec = 0.0;       // per get-consumed second
  double combined_ops_per_sec = 0.0;  // loop iterations per wall second
};

MixedTenantResult evaluate_mixed_tenants(
    const ExperimentConfig& config,
    const ReadaheadTuner::PredictFn& predictor,
    const TunerConfig& tuner_config, TuningMode mode, std::uint64_t seconds);

// Vanilla vs the online Q-learning agent (no pretrained model, §3.2's
// reinforcement-learning mode). Reported RL throughput excludes the first
// `warmup_seconds` (the exploration transient stays visible in timeline).
RlEvalOutcome evaluate_rl_closed_loop(const ExperimentConfig& config,
                                      workloads::WorkloadType workload,
                                      const RlConfig& rl_config,
                                      std::uint64_t seconds,
                                      std::uint64_t warmup_seconds);

}  // namespace kml::readahead
