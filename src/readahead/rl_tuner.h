// rl_tuner.h — reinforcement-learning readahead tuning (§3.2).
//
// "In-kernel training also allows OS developers to build ML solutions using
// reinforcement learning... we can build a feedback system in the kernel
// and transform our readahead neural network model to a reinforcement
// learning model." This is that feedback system: a tabular Q-learning agent
// that needs *no offline training and no labels* — its state is a coarse
// discretization of the same trace features, its actions are readahead
// sizes, and its reward is the throughput the system actually delivered in
// the last window. It discovers the per-workload optimum online and adapts
// when the workload changes.
#pragma once

#include "data/circular_buffer.h"
#include "math/rng.h"
#include "readahead/features.h"
#include "sim/stack.h"

#include <cstdint>
#include <vector>

namespace kml::readahead {

struct RlConfig {
  // Action set. For the readahead case study these are readahead sizes in
  // KB; with a custom actuator (see QLearningTuner ctor) they are whatever
  // knob values the actuator interprets — e.g., writeback thresholds for
  // the page-cache case study.
  std::vector<std::uint32_t> actions_kb{8, 16, 32, 64, 128, 256, 512, 1024};
  double alpha = 0.25;          // learning rate
  double gamma = 0.2;           // near-bandit: windows are weakly coupled
  double epsilon = 0.4;         // initial exploration rate
  double epsilon_decay = 0.95;  // per-window multiplicative decay
  double epsilon_min = 0.02;
  // Safe exploration: when true, epsilon-exploration only moves to an
  // action adjacent to the current greedy choice instead of uniformly over
  // the whole set. Matters when some actions are *catastrophic* (e.g., a
  // writeback threshold beyond cache capacity) — the §3.3 stability
  // concern applied to online RL.
  bool local_exploration = false;
  std::uint64_t period_ns = sim::kNsPerSec;
  std::size_t buffer_capacity = 1 << 16;
  std::uint64_t seed = 17;
};

struct RlTimelinePoint {
  std::uint64_t window;
  int state;
  int action;           // index into actions_kb; -1 for idle windows
  std::uint32_t ra_kb;
  double reward;        // ops completed in the window
  double epsilon;
};

class QLearningTuner {
 public:
  // Applies the chosen action value to the system. The default actuator
  // sets the readahead size through the block layer; other case studies
  // (e.g., writeback-threshold tuning) install their own.
  using Actuator = std::function<void(std::uint32_t value)>;

  QLearningTuner(sim::StorageStack& stack, const RlConfig& config);
  QLearningTuner(sim::StorageStack& stack, const RlConfig& config,
                 Actuator actuate);
  ~QLearningTuner();

  QLearningTuner(const QLearningTuner&) = delete;
  QLearningTuner& operator=(const QLearningTuner&) = delete;

  // Drive from the workload tick. `ops_completed` is the cumulative op
  // count (the harness's counter); the per-window delta is the reward.
  void on_tick(std::uint64_t now_ns, std::uint64_t ops_completed);

  const std::vector<RlTimelinePoint>& timeline() const { return timeline_; }

  // Q(state, action) table, row-major (state_count() x action count).
  const std::vector<double>& q_table() const { return q_; }
  int state_count() const;
  int action_count() const { return static_cast<int>(config_.actions_kb.size()); }

  // Greedy action for a state (post-training inspection).
  int greedy_action(int state) const;

  // Feature discretization: log-scale mean|Δoffset| bucket x event-rate
  // bucket. Exposed for tests.
  static int discretize(const FeatureVector& features);

 private:
  void close_window(std::uint64_t ops_completed);
  double& q_at(int state, int action);

  sim::StorageStack& stack_;
  RlConfig config_;
  Actuator actuate_;
  data::CircularBuffer<data::TraceRecord> buffer_;
  std::vector<data::TraceRecord> window_;
  FeatureExtractor extractor_;
  math::Rng rng_;
  std::vector<double> q_;
  std::vector<std::uint32_t> visits_;  // per (state, action) sample count
  int hook_handle_;
  std::uint64_t next_boundary_;
  std::uint64_t prev_ops_total_ = 0;
  int prev_state_ = -1;
  int prev_action_ = -1;
  double epsilon_;
  std::vector<RlTimelinePoint> timeline_;
};

// Closed-loop evaluation: vanilla vs the Q-learning agent (no pretrained
// model). The agent learns during the run; `warmup_seconds` are excluded
// from the reported throughput so the comparison reflects the converged
// policy (the learning transient is visible in the timeline).
struct RlEvalOutcome {
  double vanilla_ops_per_sec = 0.0;
  double rl_ops_per_sec = 0.0;       // post-warmup
  double rl_ops_per_sec_all = 0.0;   // including the learning transient
  double speedup = 0.0;              // post-warmup rl / vanilla
  std::vector<RlTimelinePoint> timeline;
};

// evaluate_rl_closed_loop() lives in pipeline.h (it needs ExperimentConfig).

}  // namespace kml::readahead
