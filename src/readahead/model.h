// model.h — building and training the readahead models (§4).
//
// The neural network is the paper's architecture: three linear layers with
// sigmoid activations (5 -> hidden -> hidden -> 4 classes), cross-entropy
// loss, SGD with lr = 0.01 and momentum = 0.99. hidden = 16 reproduces the
// ~3.9 KB parameter footprint the paper reports. The decision tree is the
// alternative model family evaluated in §4.
#pragma once

#include "data/dataset.h"
#include "dtree/decision_tree.h"
#include "nn/network.h"

namespace kml::readahead {

struct ModelConfig {
  int hidden = 16;
  double learning_rate = 0.01;  // paper's "conventional" setting
  double momentum = 0.99;
  int epochs = 400;
  int batch_size = 16;
  std::uint64_t seed = 1234;
  // Scale augmentation: the tracepoint *rate* (feature 0) is device-
  // dependent and the *offset statistics* (features 1-2) encode file size —
  // but the deployed model must transfer across devices (the paper trains
  // on NVMe, evaluates on SATA) and across files of any size. Each training
  // sample is duplicated `augment_copies` times with N(0, sigma) jitter on
  // those log-scale features so the model keys on access-pattern shape
  // (mean |Δoffset|, readahead) instead of absolute scales. bench_ablation
  // quantifies the transfer gap without this.
  int augment_copies = 3;
  double rate_jitter_sigma = 2.0;   // feature 0 (event rate)
  double scale_jitter_sigma = 1.0;  // feature 1 (cumulative offset mean)
};

// Train the readahead classifier on a labeled feature dataset. Fits the
// Z-score normalizer on the training data and stores it in the returned
// network (it ships in the model file).
nn::Network train_readahead_nn(const data::Dataset& train,
                               const ModelConfig& config);

// Accuracy of a trained network on (raw, un-normalized) features.
double evaluate_nn(nn::Network& net, const data::Dataset& test);

// k-fold cross-validated accuracy (paper: k = 10 -> 95.5%). Trains k
// networks; returns the mean test-fold accuracy.
double kfold_nn_accuracy(const data::Dataset& all, int k,
                         const ModelConfig& config);

// Hyper-parameter grid search — the §3.3 user-space development loop
// ("trying different neural network architectures or hyper-parameters can
// also run in user space"), automated: evaluates every combination by
// k-fold cross-validation and returns the best-scoring configuration.
struct GridSearchResult {
  ModelConfig best;
  double best_accuracy = 0.0;
  // One entry per combination tried: (config, accuracy), scan order.
  std::vector<std::pair<ModelConfig, double>> trials;
};

GridSearchResult grid_search(const data::Dataset& data,
                             const std::vector<int>& hidden_sizes,
                             const std::vector<double>& learning_rates,
                             const std::vector<double>& momenta, int k_folds,
                             const ModelConfig& base = {});

// Decision-tree counterpart. Trees see z-scored features via a normalizer
// fitted on the training split (kept external; the tree file format does
// not carry moments) — pass raw features and the helper normalizes
// internally using moments fit on `train`.
struct ReadaheadTree {
  dtree::DecisionTree tree;
  data::ZScoreNormalizer normalizer;

  int predict(const double* features, int n) const;
  double accuracy(const data::Dataset& test) const;
};

ReadaheadTree train_readahead_dtree(const data::Dataset& train,
                                    const dtree::TreeConfig& config = {});

}  // namespace kml::readahead
