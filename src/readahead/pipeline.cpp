#include "readahead/pipeline.h"

#include "kv/iterator.h"
#include "portability/log.h"
#include "workloads/generator.h"

#include <cassert>
#include <memory>

namespace kml::readahead {

ReadaheadTuner::PredictFn make_engine_predictor(runtime::Engine& engine) {
  return [&engine](const FeatureVector& features) {
    return engine.infer_class(features.data(), kNumSelectedFeatures);
  };
}

BatchPredictFn make_engine_batch_predictor(runtime::Engine& engine) {
  // A FeatureVector is a padding-free std::array of doubles, so `count` of
  // them in a row form exactly the row-major (count x kNumSelectedFeatures)
  // block Engine::infer_batch expects.
  static_assert(sizeof(FeatureVector) ==
                kNumSelectedFeatures * sizeof(double));
  return [&engine](const FeatureVector* features, int count,
                   int* classes_out) {
    if (features == nullptr || count <= 0) return;
    engine.infer_batch(features->data(), kNumSelectedFeatures, count,
                       classes_out);
  };
}

kv::KVConfig make_kv_config(const ExperimentConfig& config) {
  kv::KVConfig kv;
  kv.num_keys = config.num_keys;
  kv.geom.entry_bytes = config.entry_bytes;
  kv.geom.block_pages = config.block_pages;
  return kv;
}

sim::StackConfig make_stack_config(const ExperimentConfig& config) {
  sim::StackConfig stack;
  stack.device = config.device;
  stack.cache_pages = config.cache_pages;
  return stack;
}

data::Dataset collect_training_data(const TraceGenConfig& config) {
  data::Dataset dataset(config.all_candidate_features ? kNumCandidateFeatures
                                                      : kNumSelectedFeatures);

  for (int w = 0; w < workloads::kNumTrainingClasses; ++w) {
    const auto type = static_cast<workloads::WorkloadType>(w);
    for (std::uint32_t ra_kb : config.ra_values_kb) {
      sim::StorageStack stack(make_stack_config(config.base));
      kv::MiniKV db(stack, make_kv_config(config.base));
      stack.block_layer().set_readahead_kb(ra_kb);

      // Window the tracepoint stream and label each window with the
      // running workload — the supervision signal of §4.
      FeatureExtractor extractor;
      std::vector<data::TraceRecord> window;
      std::uint64_t next_boundary = sim::kNsPerSec;
      std::uint64_t window_index = 0;
      const int hook = stack.tracepoints().register_hook(
          [&window](const sim::TraceEvent& ev) {
            window.push_back(data::TraceRecord{
                ev.inode, ev.pgoff, ev.time_ns,
                static_cast<std::uint8_t>(ev.type)});
          },
          sim::kKmlCollectionTracepoints);

      workloads::WorkloadConfig wc;
      wc.type = type;
      wc.seed = config.base.seed + static_cast<std::uint64_t>(w) * 131 +
                ra_kb;
      const auto on_tick = [&](std::uint64_t now_ns) {
        while (now_ns >= next_boundary) {
          CandidateVector all = extractor.extract(
              window, stack.block_layer().readahead_kb());
          if (config.log_features) {
            all = FeatureExtractor::log_compress(all);
          }
          if (!(config.skip_first_window && window_index == 0)) {
            if (config.all_candidate_features) {
              dataset.add(all.data(), w);
            } else {
              const FeatureVector f = FeatureExtractor::select(all);
              dataset.add(f.data(), w);
            }
          }
          window.clear();
          ++window_index;
          next_boundary += sim::kNsPerSec;
        }
      };

      workloads::run_workload(db, wc,
                              config.seconds_per_run * sim::kNsPerSec,
                              UINT64_MAX, on_tick);
      stack.tracepoints().unregister(hook);
    }
  }
  return dataset;
}

data::Dataset dataset_from_trace(sim::TraceReader& reader, int label,
                                 std::uint32_t ra_kb,
                                 std::uint64_t period_ns,
                                 bool skip_first_window) {
  data::Dataset dataset(kNumSelectedFeatures);
  FeatureExtractor extractor;
  std::vector<data::TraceRecord> window;
  std::uint64_t next_boundary = period_ns;
  std::uint64_t window_index = 0;

  const auto close_window = [&] {
    const FeatureVector f = extractor.extract_selected(window, ra_kb);
    if (!(skip_first_window && window_index == 0) && !window.empty()) {
      dataset.add(f.data(), label);
    }
    window.clear();
    ++window_index;
    next_boundary += period_ns;
  };

  sim::TraceEvent ev;
  while (reader.next(ev)) {
    while (ev.time_ns >= next_boundary) close_window();
    window.push_back(data::TraceRecord{ev.inode, ev.pgoff, ev.time_ns,
                                       static_cast<std::uint8_t>(ev.type)});
  }
  if (!window.empty()) close_window();
  return dataset;
}

SequenceDataset collect_sequence_data(const SequenceGenConfig& config) {
  SequenceDataset dataset;
  const std::uint64_t period_ns = config.sub_window_ms * 1'000'000ULL;
  const int steps = config.steps_per_sequence;

  for (int w = 0; w < workloads::kNumTrainingClasses; ++w) {
    const auto type = static_cast<workloads::WorkloadType>(w);
    for (std::uint32_t ra_kb : config.ra_values_kb) {
      sim::StorageStack stack(make_stack_config(config.base));
      kv::MiniKV db(stack, make_kv_config(config.base));
      stack.block_layer().set_readahead_kb(ra_kb);

      FeatureExtractor extractor;
      std::vector<data::TraceRecord> window;
      std::vector<FeatureVector> rows;
      std::uint64_t next_boundary = period_ns;
      bool first_sequence = true;
      const int hook = stack.tracepoints().register_hook(
          [&window](const sim::TraceEvent& ev) {
            window.push_back(data::TraceRecord{
                ev.inode, ev.pgoff, ev.time_ns,
                static_cast<std::uint8_t>(ev.type)});
          },
          sim::kKmlCollectionTracepoints);

      workloads::WorkloadConfig wc;
      wc.type = type;
      wc.seed = config.base.seed + static_cast<std::uint64_t>(w) * 37 + ra_kb;
      const auto on_tick = [&](std::uint64_t now_ns) {
        while (now_ns >= next_boundary) {
          rows.push_back(extractor.extract_selected(
              window, stack.block_layer().readahead_kb()));
          window.clear();
          next_boundary += period_ns;
          if (static_cast<int>(rows.size()) == steps) {
            if (!first_sequence) {  // skip the cold-cache sequence
              matrix::MatD seq(steps, kNumSelectedFeatures);
              for (int t = 0; t < steps; ++t) {
                for (int j = 0; j < kNumSelectedFeatures; ++j) {
                  seq.at(t, j) = rows[static_cast<std::size_t>(t)]
                                     [static_cast<std::size_t>(j)];
                }
              }
              dataset.sequences.push_back(std::move(seq));
              dataset.labels.push_back(w);
            }
            first_sequence = false;
            rows.clear();
          }
        }
      };
      workloads::run_workload(db, wc,
                              config.seconds_per_run * sim::kNsPerSec,
                              UINT64_MAX, on_tick);
      stack.tracepoints().unregister(hook);
    }
  }
  return dataset;
}

std::vector<std::uint32_t> paper_ra_values() {
  return {8,   16,  24,  32,  48,  64,  96,  128, 192, 256,
          320, 384, 448, 512, 576, 640, 704, 768, 896, 1024};
}

std::vector<SweepPoint> readahead_sweep(
    const ExperimentConfig& config,
    const std::vector<workloads::WorkloadType>& workload_list,
    const std::vector<std::uint32_t>& ra_values_kb, std::uint64_t seconds) {
  std::vector<SweepPoint> points;
  for (workloads::WorkloadType type : workload_list) {
    for (std::uint32_t ra_kb : ra_values_kb) {
      sim::StorageStack stack(make_stack_config(config));
      kv::MiniKV db(stack, make_kv_config(config));
      stack.block_layer().set_readahead_kb(ra_kb);

      workloads::WorkloadConfig wc;
      wc.type = type;
      wc.seed = config.seed;
      const workloads::RunResult result = workloads::run_workload(
          db, wc, seconds * sim::kNsPerSec, UINT64_MAX);
      points.push_back(SweepPoint{type, ra_kb, result.ops_per_sec});
    }
  }
  return points;
}

std::array<std::uint32_t, workloads::kNumTrainingClasses> best_ra_table(
    const std::vector<SweepPoint>& sweep) {
  std::array<std::uint32_t, workloads::kNumTrainingClasses> table{};
  std::array<double, workloads::kNumTrainingClasses> best{};
  for (const SweepPoint& p : sweep) {
    const int w = static_cast<int>(p.workload);
    if (w < 0 || w >= workloads::kNumTrainingClasses) continue;
    const auto idx = static_cast<std::size_t>(w);
    if (p.ops_per_sec > best[idx]) {
      best[idx] = p.ops_per_sec;
      table[idx] = p.ra_kb;
    }
  }
  return table;
}

namespace {

// Runs one workload and records ops completed in each virtual second.
workloads::RunResult run_with_per_second(
    kv::MiniKV& db, const workloads::WorkloadConfig& wc,
    std::uint64_t seconds, std::vector<double>& per_second,
    const workloads::TickFn& extra_tick) {
  std::uint64_t ops_in_window = 0;
  std::uint64_t next_boundary =
      db.stack().clock().now_ns() + sim::kNsPerSec;
  const auto on_tick = [&](std::uint64_t now_ns) {
    ++ops_in_window;
    while (now_ns >= next_boundary) {
      per_second.push_back(static_cast<double>(ops_in_window));
      ops_in_window = 0;
      next_boundary += sim::kNsPerSec;
    }
    if (extra_tick) extra_tick(now_ns);
  };
  return workloads::run_workload(db, wc, seconds * sim::kNsPerSec,
                                 UINT64_MAX, on_tick);
}

}  // namespace

EvalOutcome evaluate_closed_loop(const ExperimentConfig& config,
                                 workloads::WorkloadType workload,
                                 const ReadaheadTuner::PredictFn& predictor,
                                 const TunerConfig& tuner_config,
                                 std::uint64_t seconds,
                                 const workloads::TickFn& kml_extra_tick) {
  EvalOutcome outcome;
  workloads::WorkloadConfig wc;
  wc.type = workload;
  wc.seed = config.seed;

  {
    // Vanilla: stock heuristic at the device default (128 KB).
    sim::StorageStack stack(make_stack_config(config));
    kv::MiniKV db(stack, make_kv_config(config));
    const workloads::RunResult r = run_with_per_second(
        db, wc, seconds, outcome.vanilla_per_second, {});
    outcome.vanilla_ops_per_sec = r.ops_per_sec;
  }
  {
    // KML: identical run with the tuner closed loop attached.
    sim::StorageStack stack(make_stack_config(config));
    kv::MiniKV db(stack, make_kv_config(config));
    ReadaheadTuner tuner(stack, predictor, tuner_config);
    const workloads::RunResult r = run_with_per_second(
        db, wc, seconds, outcome.kml_per_second,
        [&tuner, &kml_extra_tick](std::uint64_t now_ns) {
          tuner.on_tick(now_ns);
          if (kml_extra_tick) kml_extra_tick(now_ns);
        });
    outcome.kml_ops_per_sec = r.ops_per_sec;
    outcome.timeline = tuner.timeline();
    outcome.dropped_records = tuner.dropped_records();
    outcome.degraded_windows = tuner.degraded_windows();
  }
  outcome.speedup = outcome.vanilla_ops_per_sec > 0.0
                        ? outcome.kml_ops_per_sec / outcome.vanilla_ops_per_sec
                        : 0.0;
  return outcome;
}

MixedTenantResult evaluate_mixed_tenants(
    const ExperimentConfig& config,
    const ReadaheadTuner::PredictFn& predictor,
    const TunerConfig& tuner_config, TuningMode mode,
    std::uint64_t seconds) {
  sim::StorageStack stack(make_stack_config(config));
  kv::KVConfig kv_config = make_kv_config(config);
  kv_config.num_keys = config.num_keys / 2;  // two tenants share the budget
  kv::MiniKV scan_db(stack, kv_config);
  kv::MiniKV rand_db(stack, kv_config);

  std::unique_ptr<ReadaheadTuner> global_tuner;
  std::unique_ptr<PerFileTuner> file_tuner;
  if (mode == TuningMode::kGlobal) {
    global_tuner =
        std::make_unique<ReadaheadTuner>(stack, predictor, tuner_config);
  } else if (mode == TuningMode::kPerFile) {
    file_tuner =
        std::make_unique<PerFileTuner>(stack, predictor, tuner_config);
  }

  auto scan_it = scan_db.new_iterator();
  scan_it->seek_to_first();
  workloads::UniformKeys keys(rand_db.num_keys(), config.seed);

  const std::uint64_t deadline =
      stack.clock().now_ns() + seconds * sim::kNsPerSec;
  std::uint64_t scan_entries = 0;
  std::uint64_t gets = 0;
  std::uint64_t get_ns = 0;
  std::uint64_t scan_ns = 0;
  // Interleave the tenants: one random get, then a slice of scanning of
  // comparable virtual cost.
  constexpr int kScanSlice = 64;
  while (stack.clock().now_ns() < deadline) {
    std::uint64_t mark = stack.clock().now_ns();
    rand_db.get(keys.next());
    get_ns += stack.clock().now_ns() - mark;
    ++gets;

    mark = stack.clock().now_ns();
    for (int i = 0; i < kScanSlice; ++i) {
      if (!scan_it->valid()) scan_it->seek_to_first();
      scan_it->next();
      ++scan_entries;
    }
    scan_ns += stack.clock().now_ns() - mark;

    const std::uint64_t now = stack.clock().now_ns();
    if (global_tuner != nullptr) global_tuner->on_tick(now);
    if (file_tuner != nullptr) file_tuner->on_tick(now);
  }

  MixedTenantResult result;
  result.scan_entries_per_sec =
      scan_ns == 0 ? 0.0
                   : static_cast<double>(scan_entries) * 1e9 / scan_ns;
  result.get_ops_per_sec =
      get_ns == 0 ? 0.0 : static_cast<double>(gets) * 1e9 / get_ns;
  result.combined_ops_per_sec =
      static_cast<double>(gets) / static_cast<double>(seconds);
  return result;
}

RlEvalOutcome evaluate_rl_closed_loop(const ExperimentConfig& config,
                                      workloads::WorkloadType workload,
                                      const RlConfig& rl_config,
                                      std::uint64_t seconds,
                                      std::uint64_t warmup_seconds) {
  RlEvalOutcome outcome;
  workloads::WorkloadConfig wc;
  wc.type = workload;
  wc.seed = config.seed;

  {
    sim::StorageStack stack(make_stack_config(config));
    kv::MiniKV db(stack, make_kv_config(config));
    std::vector<double> per_second;
    const workloads::RunResult r =
        run_with_per_second(db, wc, seconds, per_second, {});
    outcome.vanilla_ops_per_sec = r.ops_per_sec;
  }
  {
    sim::StorageStack stack(make_stack_config(config));
    kv::MiniKV db(stack, make_kv_config(config));
    QLearningTuner agent(stack, rl_config);
    std::uint64_t ops = 0;
    const workloads::RunResult r = workloads::run_workload(
        db, wc, seconds * sim::kNsPerSec, UINT64_MAX,
        [&](std::uint64_t now_ns) { agent.on_tick(now_ns, ++ops); });
    outcome.rl_ops_per_sec_all = r.ops_per_sec;
    outcome.timeline = agent.timeline();

    // Post-warmup throughput from the timeline's per-window rewards.
    double post_ops = 0.0;
    std::uint64_t post_windows = 0;
    for (const RlTimelinePoint& p : outcome.timeline) {
      if (p.window < warmup_seconds) continue;
      post_ops += p.reward;
      ++post_windows;
    }
    outcome.rl_ops_per_sec =
        post_windows > 0
            ? post_ops / (static_cast<double>(post_windows) *
                          (static_cast<double>(rl_config.period_ns) /
                           static_cast<double>(sim::kNsPerSec)))
            : outcome.rl_ops_per_sec_all;
  }
  outcome.speedup = outcome.vanilla_ops_per_sec > 0.0
                        ? outcome.rl_ops_per_sec / outcome.vanilla_ops_per_sec
                        : 0.0;
  return outcome;
}

}  // namespace kml::readahead
