#include "readahead/model.h"

#include "nn/activations.h"
#include "nn/linear.h"
#include "workloads/drivers.h"

#include <cassert>
#include <vector>

namespace kml::readahead {

nn::Network train_readahead_nn(const data::Dataset& train,
                               const ModelConfig& config) {
  assert(train.size() > 0);
  const int num_classes = workloads::kNumTrainingClasses;
  math::Rng rng(config.seed);

  // Rate augmentation (see ModelConfig): jittered copies of every sample on
  // the event-rate feature.
  data::Dataset augmented = train;
  if (config.augment_copies > 0 && config.rate_jitter_sigma > 0.0) {
    std::vector<double> f(static_cast<std::size_t>(train.num_features()));
    for (int copy = 0; copy < config.augment_copies; ++copy) {
      for (int i = 0; i < train.size(); ++i) {
        for (int j = 0; j < train.num_features(); ++j) {
          f[static_cast<std::size_t>(j)] = train.features(i)[j];
        }
        f[0] += rng.normal(0.0, config.rate_jitter_sigma);
        if (train.num_features() > 1) {
          // File-size variation shifts the cumulative offset mean
          // (feature 1, log scale); jittering it teaches the model that
          // absolute offset magnitude carries no class information.
          f[1] += rng.normal(0.0, config.scale_jitter_sigma);
        }
        augmented.add(f.data(), train.label(i));
      }
    }
  }

  nn::Network net = nn::build_mlp_classifier(train.num_features(),
                                             config.hidden, num_classes, rng);
  net.normalizer().fit(augmented.to_matrix());

  const matrix::MatD x = net.normalizer().transform(augmented.to_matrix());
  const matrix::MatD y = augmented.to_one_hot(num_classes);

  nn::CrossEntropyLoss loss;
  nn::SGD opt(config.learning_rate, config.momentum);
  opt.attach(net.params());
  net.train(x, y, loss, opt, config.epochs, config.batch_size, rng);
  return net;
}

double evaluate_nn(nn::Network& net, const data::Dataset& test) {
  if (test.size() == 0) return 0.0;
  const matrix::MatD x = net.normalizer().transform(test.to_matrix());
  return net.accuracy(x, test.to_labels());
}

double kfold_nn_accuracy(const data::Dataset& all, int k,
                         const ModelConfig& config) {
  math::Rng rng(config.seed ^ 0xf01d);
  const std::vector<data::Fold> folds = data::k_fold_split(all, k, rng);
  double total = 0.0;
  for (const data::Fold& fold : folds) {
    nn::Network net = train_readahead_nn(fold.train, config);
    total += evaluate_nn(net, fold.test);
  }
  return total / static_cast<double>(folds.size());
}

GridSearchResult grid_search(const data::Dataset& data,
                             const std::vector<int>& hidden_sizes,
                             const std::vector<double>& learning_rates,
                             const std::vector<double>& momenta, int k_folds,
                             const ModelConfig& base) {
  GridSearchResult result;
  result.best = base;
  for (int hidden : hidden_sizes) {
    for (double lr : learning_rates) {
      for (double momentum : momenta) {
        ModelConfig config = base;
        config.hidden = hidden;
        config.learning_rate = lr;
        config.momentum = momentum;
        const double acc = kfold_nn_accuracy(data, k_folds, config);
        result.trials.emplace_back(config, acc);
        if (acc > result.best_accuracy) {
          result.best_accuracy = acc;
          result.best = config;
        }
      }
    }
  }
  return result;
}

int ReadaheadTree::predict(const double* features, int n) const {
  std::vector<double> z(features, features + n);
  normalizer.transform_row(z.data(), n);
  return tree.predict(z.data(), n);
}

double ReadaheadTree::accuracy(const data::Dataset& test) const {
  if (test.size() == 0) return 0.0;
  int correct = 0;
  for (int i = 0; i < test.size(); ++i) {
    if (predict(test.features(i), test.num_features()) == test.label(i)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / test.size();
}

ReadaheadTree train_readahead_dtree(const data::Dataset& train,
                                    const dtree::TreeConfig& config) {
  ReadaheadTree out;
  out.normalizer.fit(train.to_matrix());

  data::Dataset normalized(train.num_features());
  for (int i = 0; i < train.size(); ++i) {
    std::vector<double> z(train.features(i),
                          train.features(i) + train.num_features());
    out.normalizer.transform_row(z.data(), train.num_features());
    normalized.add(z.data(), train.label(i));
  }
  out.tree = dtree::DecisionTree(config);
  out.tree.fit(normalized);
  return out;
}

}  // namespace kml::readahead
