#include "readahead/file_tuner.h"

#include "observe/flight_recorder.h"
#include "observe/metrics.h"
#include "portability/log.h"

namespace kml::readahead {

PerFileTuner::PerFileTuner(sim::StorageStack& stack,
                           ReadaheadTuner::PredictFn predict,
                           const TunerConfig& config,
                           std::uint64_t min_events)
    : stack_(stack),
      predict_(std::move(predict)),
      config_(config),
      min_events_(min_events),
      buffer_(config.buffer_capacity, config.buffer_shards),
      next_boundary_(stack.clock().now_ns() + config.period_ns) {
  hook_handle_ = stack_.tracepoints().register_hook(
      [this](const sim::TraceEvent& ev) {
        buffer_.push(data::TraceRecord{
            ev.inode, ev.pgoff, ev.time_ns,
            static_cast<std::uint8_t>(ev.type)});
      },
      sim::kKmlCollectionTracepoints);
}

PerFileTuner::~PerFileTuner() {
  stack_.tracepoints().unregister(hook_handle_);
}

void PerFileTuner::on_tick(std::uint64_t now_ns) {
  // Continuous drain, demultiplexed per inode.
  data::TraceRecord rec;
  while (buffer_.pop(rec)) {
    per_file_[rec.inode].window.push_back(rec);
  }
  buffer_.publish_metrics();
  while (now_ns >= next_boundary_) {
    close_window();
    next_boundary_ += config_.period_ns;
  }
}

void PerFileTuner::close_window() {
  ++windows_;
  last_decisions_.clear();

  if (config_.health != nullptr &&
      config_.health->state() != runtime::HealthState::kHealthy) {
    // Model quarantined: restore every inode we ever actuated back to the
    // vanilla default, discard the window's records, skip all inference.
    if (!degraded_active_) {
      degraded_active_ = true;
      KML_WARN("file_tuner: health %s — reverting %zu tuned files to "
               "vanilla readahead (%u KB)",
               runtime::health_state_name(config_.health->state()),
               per_file_.size(), config_.vanilla_ra_kb);
      for (auto& [inode, state] : per_file_) {
        if (state.actuated && stack_.files().exists(inode)) {
          stack_.block_layer().set_file_readahead_kb(inode,
                                                     config_.vanilla_ra_kb);
        }
        state.actuated = false;
      }
    }
    for (auto& [inode, state] : per_file_) state.window.clear();
    degraded_windows_ += 1;
    observe::counter_add(observe::kMetricRaDegradedWindows);
    return;
  }
  degraded_active_ = false;

  // Pass 1: featurize every eligible inode. The feature rows are staged
  // contiguously so the whole window can be classified in one batched
  // inference (one network forward pass) instead of one per file.
  batch_features_.clear();
  for (auto& [inode, state] : per_file_) {
    std::vector<data::TraceRecord> window;
    window.swap(state.window);
    if (window.size() < min_events_) continue;
    if (!stack_.files().exists(inode)) continue;  // compacted away

    batch_features_.push_back(state.extractor.extract_selected(
        window, stack_.block_layer().file_readahead_kb(inode)));
    FileDecision decision;
    decision.inode = inode;
    decision.predicted_class = -1;
    decision.events = window.size();
    decision.ra_kb = stack_.block_layer().file_readahead_kb(inode);
    last_decisions_.push_back(decision);
  }
  if (last_decisions_.empty()) return;

  // Pass 2: classify the window. CPU is charged per sample either way, so
  // the virtual timeline is independent of which path runs.
  const int count = static_cast<int>(last_decisions_.size());
  batch_classes_.assign(static_cast<std::size_t>(count), -1);
  if (config_.batch_predict) {
    config_.batch_predict(batch_features_.data(), count,
                          batch_classes_.data());
  } else {
    for (int i = 0; i < count; ++i) {
      batch_classes_[static_cast<std::size_t>(i)] =
          predict_(batch_features_[static_cast<std::size_t>(i)]);
    }
  }
  for (int i = 0; i < count; ++i) stack_.charge_cpu_ns(config_.inference_cpu_ns);

  // Pass 3: actuate.
  for (int i = 0; i < count; ++i) {
    FileDecision& decision = last_decisions_[static_cast<std::size_t>(i)];
    const int cls = batch_classes_[static_cast<std::size_t>(i)];
    decision.predicted_class = cls;
    if (cls >= 0 && cls < workloads::kNumTrainingClasses) {
      decision.ra_kb = config_.class_ra_kb[static_cast<std::size_t>(cls)];
      stack_.block_layer().set_file_readahead_kb(decision.inode,
                                                 decision.ra_kb);
      per_file_[decision.inode].actuated = true;
      count_decision(cls);
      observe::counter_add("readahead.file.actuations");
      KML_EVENT(observe::EventId::kFileTunerDecision,
                static_cast<std::uint64_t>(cls), decision.ra_kb);
    }
  }
}

}  // namespace kml::readahead
