#include "readahead/file_tuner.h"

#include "observe/metrics.h"
#include "portability/log.h"

namespace kml::readahead {

PerFileTuner::PerFileTuner(sim::StorageStack& stack,
                           ReadaheadTuner::PredictFn predict,
                           const TunerConfig& config,
                           std::uint64_t min_events)
    : stack_(stack),
      predict_(std::move(predict)),
      config_(config),
      min_events_(min_events),
      buffer_(config.buffer_capacity),
      next_boundary_(stack.clock().now_ns() + config.period_ns) {
  hook_handle_ = stack_.tracepoints().register_hook(
      [this](const sim::TraceEvent& ev) {
        buffer_.push(data::TraceRecord{
            ev.inode, ev.pgoff, ev.time_ns,
            static_cast<std::uint8_t>(ev.type)});
      });
}

PerFileTuner::~PerFileTuner() {
  stack_.tracepoints().unregister(hook_handle_);
}

void PerFileTuner::on_tick(std::uint64_t now_ns) {
  // Continuous drain, demultiplexed per inode.
  data::TraceRecord rec;
  while (buffer_.pop(rec)) {
    per_file_[rec.inode].window.push_back(rec);
  }
  buffer_.publish_metrics();
  while (now_ns >= next_boundary_) {
    close_window();
    next_boundary_ += config_.period_ns;
  }
}

void PerFileTuner::close_window() {
  ++windows_;
  last_decisions_.clear();

  if (config_.health != nullptr &&
      config_.health->state() != runtime::HealthState::kHealthy) {
    // Model quarantined: restore every inode we ever actuated back to the
    // vanilla default, discard the window's records, skip all inference.
    if (!degraded_active_) {
      degraded_active_ = true;
      KML_WARN("file_tuner: health %s — reverting %zu tuned files to "
               "vanilla readahead (%u KB)",
               runtime::health_state_name(config_.health->state()),
               per_file_.size(), config_.vanilla_ra_kb);
      for (auto& [inode, state] : per_file_) {
        if (state.actuated && stack_.files().exists(inode)) {
          stack_.block_layer().set_file_readahead_kb(inode,
                                                     config_.vanilla_ra_kb);
        }
        state.actuated = false;
      }
    }
    for (auto& [inode, state] : per_file_) state.window.clear();
    degraded_windows_ += 1;
    observe::counter_add(observe::kMetricRaDegradedWindows);
    return;
  }
  degraded_active_ = false;

  for (auto& [inode, state] : per_file_) {
    std::vector<data::TraceRecord> window;
    window.swap(state.window);
    if (window.size() < min_events_) continue;
    if (!stack_.files().exists(inode)) continue;  // compacted away

    const FeatureVector features = state.extractor.extract_selected(
        window, stack_.block_layer().file_readahead_kb(inode));
    const int cls = predict_(features);
    stack_.charge_cpu_ns(config_.inference_cpu_ns);

    FileDecision decision;
    decision.inode = inode;
    decision.predicted_class = cls;
    decision.events = window.size();
    decision.ra_kb = stack_.block_layer().file_readahead_kb(inode);
    if (cls >= 0 && cls < workloads::kNumTrainingClasses) {
      decision.ra_kb = config_.class_ra_kb[static_cast<std::size_t>(cls)];
      stack_.block_layer().set_file_readahead_kb(inode, decision.ra_kb);
      state.actuated = true;
      count_decision(cls);
      observe::counter_add("readahead.file.actuations");
    }
    last_decisions_.push_back(decision);
  }
}

}  // namespace kml::readahead
