#include "eviction/features.h"

#include "math/approx.h"

#include <bit>

namespace kml::eviction {
namespace {

// One map key per (inode, pgoff) — same splitmix combine as the cache's
// PageKeyHash; a rare collision only blurs one distance sample.
std::uint64_t page_key(std::uint64_t inode, std::uint64_t pgoff) {
  std::uint64_t x = inode * 0x9e3779b97f4a7c15ULL ^ pgoff;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  return x;
}

// ln 2 — kml_log is natural; the features are log2-scaled to match the
// reuse-distance bucket indices (feature 3).
constexpr double kLn2 = 0.6931471805599453;

double log2_1p(double v) { return math::kml_log(1.0 + v) / kLn2; }

}  // namespace

const char* cache_phase_name(CachePhase phase) {
  switch (phase) {
    case CachePhase::kShifting: return "shifting";
    case CachePhase::kScanMix: return "scanmix";
    case CachePhase::kZipfHot: return "zipfhot";
  }
  return nullptr;
}

CacheFeatureVector CacheFeatureExtractor::extract(
    const std::vector<data::TraceRecord>& window,
    const sim::PageCacheStats& stats) {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t hit_runs = 0;
  std::uint64_t current_run = 0;
  reuse_hist_.fill(0);

  for (const data::TraceRecord& rec : window) {
    const auto kind = static_cast<sim::TraceEventType>(rec.kind);
    if (kind == sim::TraceEventType::kWritebackDirtyPage) {
      ++writebacks;
      continue;
    }
    if (kind == sim::TraceEventType::kPageCacheHit) {
      ++hits;
      ++current_run;
    } else if (kind == sim::TraceEventType::kPageCacheMiss) {
      ++misses;
      if (current_run > 0) {
        ++hit_runs;
        current_run = 0;
      }
    } else {
      continue;  // collection-mask records (inserts) are not accesses
    }
    // Reuse distance: accesses since this page was last touched. First
    // touches have no distance (an "infinite" sample would only re-state
    // the miss count, which feature 1 already carries).
    ++access_counter_;
    const std::uint64_t key = page_key(rec.inode, rec.pgoff);
    auto [it, fresh] = last_access_.try_emplace(key, access_counter_);
    if (!fresh) {
      const std::uint64_t distance = access_counter_ - it->second;
      it->second = access_counter_;
      ++reuse_hist_[std::bit_width(distance)];
    }
  }
  if (current_run > 0) ++hit_runs;
  if (last_access_.size() > kMaxTrackedPages) last_access_.clear();

  // Median reuse-distance bucket: walk the histogram to the middle sample.
  std::uint64_t distance_samples = 0;
  for (const std::uint64_t c : reuse_hist_) distance_samples += c;
  double median_bucket = 0.0;
  if (distance_samples > 0) {
    std::uint64_t seen = 0;
    for (int b = 0; b < kReuseBuckets; ++b) {
      seen += reuse_hist_[b];
      if (seen * 2 >= distance_samples) {
        median_bucket = static_cast<double>(b);
        break;
      }
    }
  }

  // Prefetch-waste rate from the cache's cumulative accounting.
  double waste_rate = 0.0;
  if (stats_primed_ && stats.inserted >= prev_inserted_ &&
      stats.prefetch_wasted >= prev_wasted_) {
    const std::uint64_t ins = stats.inserted - prev_inserted_;
    const std::uint64_t waste = stats.prefetch_wasted - prev_wasted_;
    if (ins > 0) {
      waste_rate = static_cast<double>(waste) / static_cast<double>(ins);
    }
  }
  stats_primed_ = true;
  prev_inserted_ = stats.inserted;
  prev_wasted_ = stats.prefetch_wasted;

  const std::uint64_t accesses = hits + misses;
  const std::uint64_t records = accesses + writebacks;
  CacheFeatureVector f{};
  f[0] = log2_1p(static_cast<double>(accesses));
  f[1] = accesses == 0
             ? 0.0
             : static_cast<double>(hits) / static_cast<double>(accesses);
  f[2] = hit_runs == 0 ? 0.0
                       : log2_1p(static_cast<double>(hits) /
                                 static_cast<double>(hit_runs));
  f[3] = median_bucket;
  f[4] = records == 0 ? 0.0
                      : static_cast<double>(writebacks) /
                            static_cast<double>(records);
  f[5] = waste_rate;
  return f;
}

void CacheFeatureExtractor::reset() {
  last_access_.clear();
  access_counter_ = 0;
  reuse_hist_.fill(0);
  stats_primed_ = false;
  prev_wasted_ = 0;
  prev_inserted_ = 0;
}

}  // namespace kml::eviction
