// tuner.h — the closed loop of Figure 1, pointed at the reclaim policy.
//
// Same execution flow as the readahead tuner (§3.3): (1) hooks on the
// per-access cache tracepoints push records into the sharded buffer; (2)
// once per second the records are windowed and featurized against the
// cache's own accounting; (3-4) the features go to the engine for
// inference; (5) the tuner actuates — here by switching the page cache's
// EvictionPolicy (and its knobs) instead of writing ra_pages. Changing the
// policy changes future hits, which changes future features: the same
// closed circuit, second case study.
//
// Safety mirrors readahead: while the health monitor reports DEGRADED or
// FAILED (including the cache hit-rate-collapse signal the monitor now
// carries), the tuner pins the cache back to plain LRU — the vanilla
// kernel-approximating policy — and stops trusting the model.
#pragma once

#include "data/sharded_buffer.h"
#include "eviction/features.h"
#include "readahead/rl_tuner.h"
#include "runtime/engine.h"
#include "runtime/health.h"
#include "sim/stack.h"

#include <array>
#include <functional>
#include <vector>

namespace kml::eviction {

// One actuation table entry: the policy (and knob values) a predicted
// phase maps to.
struct PolicyChoice {
  sim::EvictionPolicyType type = sim::EvictionPolicyType::kLru;
  sim::EvictionParams params;
};

// Phase -> policy mapping from the §4-style study in bench_cache:
//   shifting -> LRU, scanmix -> scan-resistant GCLOCK, zipfhot -> CLOCK.
std::array<PolicyChoice, kNumCachePhases> default_policy_table();

// Batched classifier over contiguous feature rows (same contract as
// readahead::BatchPredictFn, different feature width).
using CacheBatchPredictFn = std::function<void(
    const CacheFeatureVector* features, int count, int* classes_out)>;

struct CacheTunerConfig {
  std::array<PolicyChoice, kNumCachePhases> class_policy =
      default_policy_table();
  std::uint64_t period_ns = sim::kNsPerSec;
  std::size_t buffer_capacity = 1 << 16;
  unsigned buffer_shards = 1;
  // Per-window inference cost on the virtual clock (same budget as the
  // readahead model; the network is the same shape).
  std::uint64_t inference_cpu_ns = 21'000;
  // Graceful degradation: DEGRADED/FAILED pins `vanilla`, predictions stop
  // actuating. nullptr = always trust the model.
  const runtime::HealthMonitor* health = nullptr;
  PolicyChoice vanilla;  // default-constructed: plain LRU
  CacheBatchPredictFn batch_predict;
};

struct CacheTimelinePoint {
  std::uint64_t window;
  int predicted_class;            // -1 for idle/degraded windows
  sim::EvictionPolicyType policy; // policy in force after actuation
  std::uint64_t events;
  bool switched = false;          // this window's actuation changed policy
  bool degraded = false;
};

class CacheTuner {
 public:
  using PredictFn = std::function<int(const CacheFeatureVector&)>;

  CacheTuner(sim::StorageStack& stack, PredictFn predict,
             const CacheTunerConfig& config);
  ~CacheTuner();

  CacheTuner(const CacheTuner&) = delete;
  CacheTuner& operator=(const CacheTuner&) = delete;

  // Drive from the workload's per-op tick; closes windows and actuates on
  // every period boundary crossed.
  void on_tick(std::uint64_t now_ns);

  const std::vector<CacheTimelinePoint>& timeline() const {
    return timeline_;
  }
  std::uint64_t windows() const { return timeline_.size(); }
  std::uint64_t dropped_records() const { return buffer_.dropped(); }
  std::uint64_t degraded_windows() const { return degraded_windows_; }

 private:
  void close_window();
  bool health_allows_actuation();

  sim::StorageStack& stack_;
  PredictFn predict_;
  CacheTunerConfig config_;
  data::ShardedBuffer<data::TraceRecord> buffer_;
  std::vector<data::TraceRecord> window_;
  CacheFeatureExtractor extractor_;
  int hook_handle_;
  std::uint64_t next_boundary_;
  std::vector<CacheTimelinePoint> timeline_;
  std::uint64_t degraded_windows_ = 0;
  bool degraded_active_ = false;
};

// --- Engine adapters ---------------------------------------------------------

CacheTuner::PredictFn make_cache_engine_predictor(runtime::Engine& engine);
CacheBatchPredictFn make_cache_engine_batch_predictor(
    runtime::Engine& engine);

// --- RL variant --------------------------------------------------------------
//
// The readahead Q-learning agent with a policy actuator: actions are
// indices into `table`, the reward stream is cumulative cache hits (pass
// stats().hits as `ops_completed` on tick). No labels, no offline model.
readahead::RlConfig cache_rl_config(std::uint64_t seed = 17);
readahead::QLearningTuner::Actuator make_policy_actuator(
    sim::StorageStack& stack,
    const std::array<PolicyChoice, kNumCachePhases>& table);

}  // namespace kml::eviction
