// workload.h — the phase-shifting workload for the eviction case study.
//
// No single static reclaim policy wins this workload: it alternates between
// phases engineered so the policies trade places.
//
//   kShifting — uniform random reads inside a hot window that *jumps* to a
//     disjoint region every shift_every_ops. Recency is the only signal:
//     LRU re-learns the new window in one coverage pass, while a weighted
//     clock hoards the abandoned window (every page at max weight) for up
//     to max_weight hand laps, evicting fresh pages the whole time.
//   kScanMix — several Zipf reads per op over a near-capacity hot region,
//     interleaved with a strided one-touch scan through the cold region
//     (the stride defeats sequential detection, so every scan page is a
//     single-page demand read). The scan churns an LRU list faster than
//     the hot tail is re-touched; a scan-resistant GCLOCK (insert weight
//     0, hits accumulate) recycles the never-re-read scan pages and pins
//     the hot set.
//   kZipfHot — stable Zipfian reads; every policy holds the hot set, so
//     the phase anchors the "don't switch for no reason" class.
//
// A driver runs one stack-level file (no MiniKV indirection — the study
// targets the page cache itself) and charges a fixed per-op CPU cost so
// virtual time advances even in all-hit phases (windows must keep closing).
#pragma once

#include "eviction/features.h"
#include "math/rng.h"
#include "sim/stack.h"
#include "workloads/drivers.h"
#include "workloads/generator.h"

#include <cstdint>
#include <vector>

namespace kml::eviction {

struct PhaseWorkloadConfig {
  std::uint64_t file_pages = 1u << 18;     // 1 GiB backing file
  std::uint64_t window_pages = 12'000;     // kShifting working set
  std::uint64_t shift_every_ops = 150'000; // kShifting ops between jumps
  std::uint64_t hot_pages = 15'500;        // kScanMix / kZipfHot hot region
  std::uint64_t zipf_reads_per_op = 4;     // kScanMix hot reads per op
  std::uint64_t scan_reads_per_op = 2;     // kScanMix pollution reads per op
  std::uint64_t scan_stride = 17;          // defeats sequential detection
  double zipf_theta = 0.9;
  std::uint64_t cpu_ns_per_op = 2'000;     // keeps the virtual clock moving
  std::uint64_t seed = 99;
};

struct PhaseSegment {
  CachePhase phase;
  std::uint64_t seconds;
};

// Per-phase-segment outcome (stats deltas over the segment).
struct PhaseResult {
  CachePhase phase;
  std::uint64_t ops = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  double hit_rate = 0.0;
};

class PhaseDriver {
 public:
  // Creates the backing file in `stack` and seeds the generators.
  PhaseDriver(sim::StorageStack& stack, const PhaseWorkloadConfig& config);

  // Run one phase for `duration_ns` of virtual time; `on_tick` fires after
  // every op with the current virtual time (the tuner's drive signal).
  // Generator and cursor state persist across calls, so a schedule of
  // segments is one continuous workload.
  PhaseResult run_phase(CachePhase phase, std::uint64_t duration_ns,
                        const workloads::TickFn& on_tick = {});

  // Convenience: run a whole schedule, returning one result per segment.
  std::vector<PhaseResult> run_schedule(
      const std::vector<PhaseSegment>& schedule,
      const workloads::TickFn& on_tick = {});

  std::uint64_t ops_completed() const { return ops_; }
  std::uint64_t inode() const { return inode_; }

 private:
  void one_op(CachePhase phase);

  sim::StorageStack& stack_;
  PhaseWorkloadConfig config_;
  std::uint64_t inode_;
  math::Rng rng_;
  workloads::ZipfKeys zipf_;
  std::uint64_t ops_ = 0;
  std::uint64_t shift_ops_ = 0;      // kShifting ops since last jump
  std::uint64_t window_start_ = 0;   // kShifting window position
  std::uint64_t scan_pos_;           // kScanMix scan cursor
};

// The standard alternating evaluation schedule: shifting and scanmix
// interleaved (each long enough for the tuner to classify and actuate),
// with one zipfhot segment. Any static policy loses at least one phase.
std::vector<PhaseSegment> default_phase_schedule(std::uint64_t seconds_per_phase,
                                                 int repeats);

}  // namespace kml::eviction
