#include "eviction/model.h"

#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/sgd.h"

#include <cassert>

namespace kml::eviction {

nn::Network train_cache_nn(const data::Dataset& train,
                           const CacheModelConfig& config) {
  assert(train.size() > 0);
  math::Rng rng(config.seed);
  nn::Network net = nn::build_mlp_classifier(
      train.num_features(), config.hidden, kNumCachePhases, rng);
  net.normalizer().fit(train.to_matrix());

  const matrix::MatD x = net.normalizer().transform(train.to_matrix());
  const matrix::MatD y = train.to_one_hot(kNumCachePhases);

  nn::CrossEntropyLoss loss;
  nn::SGD opt(config.learning_rate, config.momentum);
  opt.attach(net.params());
  net.train(x, y, loss, opt, config.epochs, config.batch_size, rng);
  return net;
}

double evaluate_cache_nn(nn::Network& net, const data::Dataset& test) {
  if (test.size() == 0) return 0.0;
  const matrix::MatD x = net.normalizer().transform(test.to_matrix());
  return net.accuracy(x, test.to_labels());
}

data::Dataset collect_cache_training_data(
    const CacheTraceGenConfig& config) {
  data::Dataset dataset(kNumCacheFeatures);

  for (int phase = 0; phase < kNumCachePhases; ++phase) {
    for (const PolicyChoice& policy : config.policies) {
      sim::StackConfig stack_config = config.stack;
      stack_config.eviction_policy = policy.type;
      stack_config.eviction_params = policy.params;
      sim::StorageStack stack(stack_config);
      PhaseDriver driver(stack, config.workload);
      CacheFeatureExtractor extractor;

      // Window the per-access stream on 1 s boundaries, exactly the
      // records the online tuner would see.
      std::vector<data::TraceRecord> window;
      const int hook = stack.tracepoints().register_hook(
          [&window](const sim::TraceEvent& ev) {
            window.push_back(data::TraceRecord{
                ev.inode, ev.pgoff, ev.time_ns,
                static_cast<std::uint8_t>(ev.type)});
          },
          sim::kCacheStudyTracepoints);

      std::uint64_t next_boundary =
          stack.clock().now_ns() + sim::kNsPerSec;
      std::uint64_t windows_taken = 0;
      auto tick = [&](std::uint64_t now_ns) {
        while (now_ns >= next_boundary) {
          next_boundary += sim::kNsPerSec;
          if (window.empty()) continue;
          const CacheFeatureVector f =
              extractor.extract(window, stack.cache().stats());
          window.clear();
          ++windows_taken;
          if (config.skip_first_window && windows_taken == 1) continue;
          dataset.add(f.data(), phase);
        }
      };
      driver.run_phase(static_cast<CachePhase>(phase),
                       config.seconds_per_run * sim::kNsPerSec, tick);
      stack.tracepoints().unregister(hook);
    }
  }
  return dataset;
}

}  // namespace kml::eviction
