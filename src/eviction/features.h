// features.h — feature pipeline for the eviction case study.
//
// Second instantiation of the paper's recipe (§3.3 generalizes beyond
// readahead): attach data-collection hooks to tracepoints, window the
// records once per second, extract a handful of domain-expert features, and
// classify the workload phase. Where the readahead model watches *what* is
// being inserted (offsets, rates), the eviction model watches *how the
// cache is behaving* — the per-access hit/miss stream plus the cache's own
// waste accounting:
//
//   0 log2(1 + accesses in the window)        — intensity
//   1 hit fraction                            — how well reclaim is doing
//   2 log2(1 + mean hit run length)           — sequentiality of hits; long
//                                               runs = streaming re-reads
//   3 median log2 reuse distance              — the working-set signal: how
//                                               many accesses pass before a
//                                               page comes back
//   4 dirty fraction                          — writeback records / records
//   5 prefetch-waste rate                     — wasted / inserted deltas
//                                               from PageCacheStats
//
// Reuse distances are bucketed into a log-scale histogram (std::bit_width,
// integer-only — deliberately NOT the observe::Histogram statics, which
// compile away under KML_OBSERVE=OFF) and summarized by the median bucket;
// scans push it high while it tracks the working-set size for loops.
#pragma once

#include "data/windower.h"
#include "sim/page_cache.h"

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace kml::eviction {

// Workload phases the classifier distinguishes — each maps to the policy
// that wins it (see default_policy_table() in tuner.h).
enum class CachePhase : int {
  kShifting = 0,  // sliding working set: recency is the signal -> LRU
  kScanMix = 1,   // hot set + polluting scan: frequency/scan-resistance
                  // is the signal -> GCLOCK (insert weight 0)
  kZipfHot = 2,   // stable skewed set: any policy holds it -> CLOCK
};
inline constexpr int kNumCachePhases = 3;

const char* cache_phase_name(CachePhase phase);

inline constexpr int kNumCacheFeatures = 6;
using CacheFeatureVector = std::array<double, kNumCacheFeatures>;

// Log-scale reuse-distance buckets: bucket b holds distances in
// [2^(b-1), 2^b). 64 buckets cover every uint64 distance.
inline constexpr int kReuseBuckets = 64;

class CacheFeatureExtractor {
 public:
  // Featurize one window of per-access records (kinds: kPageCacheHit,
  // kPageCacheMiss, kWritebackDirtyPage) against the cache's cumulative
  // stats. Reuse-distance tracking and the stats baseline persist across
  // windows; the first call primes the stats deltas.
  CacheFeatureVector extract(const std::vector<data::TraceRecord>& window,
                             const sim::PageCacheStats& stats);

  // Forget everything (fresh module load / new collection run).
  void reset();

  // The per-window reuse-distance histogram of the most recent extract()
  // (log-scale bucket counts) — exposed for tests and introspection.
  const std::array<std::uint64_t, kReuseBuckets>& last_reuse_histogram()
      const {
    return reuse_hist_;
  }

 private:
  // Last-access index per page for reuse distances. Bounded: wiped when it
  // exceeds kMaxTrackedPages (a few minutes of distinct pages); distances
  // then re-warm within a window.
  static constexpr std::size_t kMaxTrackedPages = 1u << 20;

  std::unordered_map<std::uint64_t, std::uint64_t> last_access_;
  std::uint64_t access_counter_ = 0;
  std::array<std::uint64_t, kReuseBuckets> reuse_hist_{};
  bool stats_primed_ = false;
  std::uint64_t prev_wasted_ = 0;
  std::uint64_t prev_inserted_ = 0;
};

}  // namespace kml::eviction
