#include "eviction/workload.h"

namespace kml::eviction {

PhaseDriver::PhaseDriver(sim::StorageStack& stack,
                         const PhaseWorkloadConfig& config)
    : stack_(stack),
      config_(config),
      inode_(stack.files().create(config.file_pages).inode),
      rng_(config.seed),
      zipf_(config.hot_pages, config.zipf_theta, config.seed ^ 0x5eed),
      scan_pos_(config.hot_pages) {}

void PhaseDriver::one_op(CachePhase phase) {
  sim::FileHandle& file = stack_.files().get(inode_);
  switch (phase) {
    case CachePhase::kShifting: {
      const std::uint64_t span = config_.file_pages - config_.window_pages;
      const std::uint64_t page =
          window_start_ + rng_.next_below(config_.window_pages);
      stack_.cache().read(file, page, 1);
      if (++shift_ops_ >= config_.shift_every_ops) {
        shift_ops_ = 0;
        window_start_ = (window_start_ + config_.window_pages) % span;
      }
      break;
    }
    case CachePhase::kScanMix: {
      for (std::uint64_t i = 0; i < config_.zipf_reads_per_op; ++i) {
        stack_.cache().read(file, zipf_.next(), 1);
      }
      // The polluting scan: strided one-touch reads through the cold
      // region (the stride keeps each one on the single-page random path).
      for (std::uint64_t i = 0; i < config_.scan_reads_per_op; ++i) {
        scan_pos_ += config_.scan_stride;
        if (scan_pos_ >= config_.file_pages) scan_pos_ = config_.hot_pages;
        stack_.cache().read(file, scan_pos_, 1);
      }
      break;
    }
    case CachePhase::kZipfHot: {
      stack_.cache().read(file, zipf_.next(), 1);
      break;
    }
  }
  stack_.charge_cpu_ns(config_.cpu_ns_per_op);
}

PhaseResult PhaseDriver::run_phase(CachePhase phase,
                                   std::uint64_t duration_ns,
                                   const workloads::TickFn& on_tick) {
  const sim::PageCacheStats before = stack_.cache().stats();
  const std::uint64_t end_ns = stack_.clock().now_ns() + duration_ns;
  PhaseResult result;
  result.phase = phase;
  while (stack_.clock().now_ns() < end_ns) {
    one_op(phase);
    ++ops_;
    ++result.ops;
    if (on_tick) on_tick(stack_.clock().now_ns());
  }
  const sim::PageCacheStats& after = stack_.cache().stats();
  result.hits = after.hits - before.hits;
  result.misses = after.misses - before.misses;
  const std::uint64_t accesses = result.hits + result.misses;
  result.hit_rate = accesses == 0 ? 0.0
                                  : static_cast<double>(result.hits) /
                                        static_cast<double>(accesses);
  return result;
}

std::vector<PhaseResult> PhaseDriver::run_schedule(
    const std::vector<PhaseSegment>& schedule,
    const workloads::TickFn& on_tick) {
  std::vector<PhaseResult> results;
  results.reserve(schedule.size());
  for (const PhaseSegment& seg : schedule) {
    results.push_back(
        run_phase(seg.phase, seg.seconds * sim::kNsPerSec, on_tick));
  }
  return results;
}

std::vector<PhaseSegment> default_phase_schedule(
    std::uint64_t seconds_per_phase, int repeats) {
  std::vector<PhaseSegment> schedule;
  for (int r = 0; r < repeats; ++r) {
    schedule.push_back({CachePhase::kShifting, seconds_per_phase});
    schedule.push_back({CachePhase::kScanMix, seconds_per_phase});
  }
  schedule.push_back({CachePhase::kZipfHot, seconds_per_phase});
  return schedule;
}

}  // namespace kml::eviction
