#include "eviction/tuner.h"

#include "observe/flight_recorder.h"
#include "observe/metrics.h"
#include "portability/kml_lib.h"
#include "portability/log.h"

#include <cstdio>

namespace kml::eviction {
namespace {

// Per-phase decision counter ("cache.decision.<phase>"); registry copies
// the name at registration.
void count_cache_decision(int cls) {
  if (cls < 0 || cls >= kNumCachePhases) return;
  char name[48];
  std::snprintf(name, sizeof(name), "cache.decision.%s",
                cache_phase_name(static_cast<CachePhase>(cls)));
  observe::counter_add(name);
}

}  // namespace

std::array<PolicyChoice, kNumCachePhases> default_policy_table() {
  std::array<PolicyChoice, kNumCachePhases> table;
  table[static_cast<int>(CachePhase::kShifting)] = {
      sim::EvictionPolicyType::kLru, sim::EvictionParams{}};
  sim::EvictionParams scan_resistant;
  scan_resistant.gclock_insert_weight = 0;
  scan_resistant.gclock_hit_weight = 2;
  scan_resistant.gclock_max_weight = 8;
  table[static_cast<int>(CachePhase::kScanMix)] = {
      sim::EvictionPolicyType::kGclock, scan_resistant};
  table[static_cast<int>(CachePhase::kZipfHot)] = {
      sim::EvictionPolicyType::kClock, sim::EvictionParams{}};
  return table;
}

CacheTuner::CacheTuner(sim::StorageStack& stack, PredictFn predict,
                       const CacheTunerConfig& config)
    : stack_(stack),
      predict_(std::move(predict)),
      config_(config),
      buffer_(config.buffer_capacity, config.buffer_shards),
      next_boundary_(stack.clock().now_ns() + config.period_ns) {
  // Collection hook on the per-access tracepoints (hit/miss/writeback) —
  // the eviction study's mask, disjoint windows from the readahead mask's
  // insert stream.
  hook_handle_ = stack_.tracepoints().register_hook(
      [this](const sim::TraceEvent& ev) {
        buffer_.push(data::TraceRecord{
            ev.inode, ev.pgoff, ev.time_ns,
            static_cast<std::uint8_t>(ev.type)});
      },
      sim::kCacheStudyTracepoints);
}

CacheTuner::~CacheTuner() {
  stack_.tracepoints().unregister(hook_handle_);
}

void CacheTuner::on_tick(std::uint64_t now_ns) {
  data::TraceRecord rec;
  while (buffer_.pop(rec)) window_.push_back(rec);
  buffer_.publish_metrics();
  while (now_ns >= next_boundary_) {
    close_window();
    next_boundary_ += config_.period_ns;
  }
}

bool CacheTuner::health_allows_actuation() {
  if (config_.health == nullptr) return true;
  const runtime::HealthState state = config_.health->state();
  if (state == runtime::HealthState::kHealthy) {
    degraded_active_ = false;
    return true;
  }
  if (!degraded_active_) {
    degraded_active_ = true;
    stack_.cache().set_policy(config_.vanilla.type, config_.vanilla.params);
    KML_WARN("cache_tuner: health %s — reverting to %s eviction",
             runtime::health_state_name(state),
             sim::eviction_policy_name(config_.vanilla.type));
  }
  return false;
}

void CacheTuner::close_window() {
  std::vector<data::TraceRecord> window;
  window.swap(window_);

  CacheTimelinePoint point;
  point.window = timeline_.size();
  point.events = window.size();
  point.policy = stack_.cache().policy_type();

  observe::counter_add(observe::kMetricCacheTunerWindows);

  if (!health_allows_actuation()) {
    point.predicted_class = -1;
    point.policy = stack_.cache().policy_type();
    point.degraded = true;
    degraded_windows_ += 1;
    observe::counter_add(observe::kMetricCacheTunerDegraded);
    timeline_.push_back(point);
    return;
  }

  if (window.empty()) {
    // Idle second: keep the current policy.
    point.predicted_class = -1;
    timeline_.push_back(point);
    return;
  }

  // Per-stage attribution (telemetry v3), mirroring the readahead tuner:
  // coalesce = feature extraction, infer = model call, decide = policy
  // actuation. Wall clock (the tuner's own CPU cost), once per window.
  const bool obs = observe::enabled();
  const std::uint64_t t0 = obs ? kml_now_ns() : 0;
  const CacheFeatureVector features =
      extractor_.extract(window, stack_.cache().stats());
  const std::uint64_t t1 = obs ? kml_now_ns() : 0;
  int cls = -1;
  if (config_.batch_predict) {
    config_.batch_predict(&features, 1, &cls);
  } else {
    cls = predict_(features);
  }
  stack_.charge_cpu_ns(config_.inference_cpu_ns);
  const std::uint64_t t2 = obs ? kml_now_ns() : 0;

  if (cls >= 0 && cls < kNumCachePhases) {
    const PolicyChoice& choice =
        config_.class_policy[static_cast<std::size_t>(cls)];
    point.switched = stack_.cache().set_policy(choice.type, choice.params);
    count_cache_decision(cls);
    KML_EVENT(observe::EventId::kCacheTunerDecision,
              static_cast<std::uint64_t>(cls),
              static_cast<std::uint64_t>(choice.type));
  }
  if (obs) {
    observe::hist_record(observe::kMetricCacheStageCoalesceNs, t1 - t0);
    observe::hist_record(observe::kMetricCacheStageInferNs, t2 - t1);
    observe::hist_record(observe::kMetricCacheStageDecideNs,
                         kml_now_ns() - t2);
  }
  point.predicted_class = cls;
  point.policy = stack_.cache().policy_type();
  timeline_.push_back(point);
}

CacheTuner::PredictFn make_cache_engine_predictor(runtime::Engine& engine) {
  return [&engine](const CacheFeatureVector& features) {
    return engine.infer_class(features.data(), kNumCacheFeatures);
  };
}

CacheBatchPredictFn make_cache_engine_batch_predictor(
    runtime::Engine& engine) {
  static_assert(sizeof(CacheFeatureVector) ==
                kNumCacheFeatures * sizeof(double));
  return [&engine](const CacheFeatureVector* features, int count,
                   int* classes_out) {
    if (features == nullptr || count <= 0) return;
    engine.infer_batch(features->data(), kNumCacheFeatures, count,
                       classes_out);
  };
}

readahead::RlConfig cache_rl_config(std::uint64_t seed) {
  readahead::RlConfig config;
  // Actions are table indices, not KB values. The set is tiny, so uniform
  // exploration converges fast and local_exploration stays off.
  config.actions_kb = {0, 1, 2};
  config.seed = seed;
  return config;
}

readahead::QLearningTuner::Actuator make_policy_actuator(
    sim::StorageStack& stack,
    const std::array<PolicyChoice, kNumCachePhases>& table) {
  return [&stack, table](std::uint32_t action) {
    if (action >= table.size()) return;
    const PolicyChoice& choice = table[action];
    stack.cache().set_policy(choice.type, choice.params);
  };
}

}  // namespace kml::eviction
