// model.h — training the eviction-phase classifier.
//
// Same architecture family as the readahead model (§4): a small MLP
// (6 features -> hidden -> hidden -> 3 phases), cross-entropy, SGD with
// momentum, Z-score normalizer fitted on the training split and shipped
// inside the network. Training data comes from the user-space path of
// §3.3: run each phase workload under each static policy, window the
// per-access trace, label windows with the phase — collection under every
// policy matters because the tuner's own actuations change the feature
// distribution (hit fraction, waste rate) and the classifier must
// recognize a phase regardless of which policy happens to be in force.
#pragma once

#include "data/dataset.h"
#include "eviction/tuner.h"
#include "eviction/workload.h"
#include "nn/network.h"

namespace kml::eviction {

struct CacheModelConfig {
  int hidden = 16;
  double learning_rate = 0.01;
  double momentum = 0.99;
  int epochs = 300;
  int batch_size = 16;
  std::uint64_t seed = 4242;
};

nn::Network train_cache_nn(const data::Dataset& train,
                           const CacheModelConfig& config);

// Accuracy on raw (un-normalized) features.
double evaluate_cache_nn(nn::Network& net, const data::Dataset& test);

struct CacheTraceGenConfig {
  sim::StackConfig stack;  // device/cache geometry for collection runs
  PhaseWorkloadConfig workload;
  std::uint64_t seconds_per_run = 10;
  bool skip_first_window = true;  // cold-cache second is atypical
  // Policies to collect under; defaults to the tuner's actuation table so
  // every (phase, policy-in-force) pairing is represented.
  std::array<PolicyChoice, kNumCachePhases> policies =
      default_policy_table();
};

// One fresh stack per (phase, policy) run; features windowed at 1 s,
// labeled with the phase id (0..kNumCachePhases-1).
data::Dataset collect_cache_training_data(const CacheTraceGenConfig& config);

}  // namespace kml::eviction
