// decision_tree.h — CART decision-tree classifier (§4).
//
// "KML currently supports neural networks and decision trees. We have also
// implemented a decision tree for the readahead use-case to show how
// different ML approaches perform on the same problem." Greedy CART with
// Gini impurity, axis-aligned threshold splits, depth/min-samples stopping.
// Inference is FPU-light (comparisons only), which is why a kernel
// deployment might prefer it despite the accuracy gap the paper reports.
#pragma once

#include "data/dataset.h"
#include "matrix/matrix.h"

#include <cstdint>
#include <string>
#include <vector>

namespace kml::dtree {

struct TreeConfig {
  int max_depth = 8;
  int min_samples_split = 4;
  // Minimum Gini improvement to accept a split; guards against overfit
  // splits on noise.
  double min_gain = 1e-6;
};

class DecisionTree {
 public:
  DecisionTree() = default;
  explicit DecisionTree(TreeConfig config) : config_(config) {}

  // Fit on a labeled dataset. Replaces any previous tree.
  void fit(const data::Dataset& train);

  // Predicted class for one feature vector.
  int predict(const double* features, int n) const;

  // Row-wise prediction.
  matrix::MatI predict(const matrix::MatD& x) const;

  double accuracy(const data::Dataset& test) const;

  int node_count() const { return static_cast<int>(nodes_.size()); }
  int depth() const;
  bool trained() const { return !nodes_.empty(); }
  int num_features() const { return num_features_; }

  // Gini importance per feature: split gains weighted by the fraction of
  // training rows that reached the split, normalized to sum to 1 (all
  // zeros for a stump). Mirrors the paper's feature-relevance analysis
  // from the model's own perspective.
  std::vector<double> feature_importance() const;

  // Human-readable tree dump (one node per line, indent = depth).
  // `feature_names` may be null to print indices.
  std::string to_text(const char* const* feature_names = nullptr) const;

  // Serialization to the KML file format family (magic 'KMLT').
  bool save(const char* path) const;
  bool load(const char* path);

 private:
  // Flat node pool; children referenced by index (-1 = none). A leaf has
  // left == -1.
  struct Node {
    int feature = -1;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    int label = -1;     // majority class (valid for all nodes)
    int depth = 0;
    int rows = 0;       // training rows that reached this node
    double gain = 0.0;  // Gini gain of this node's split (0 for leaves)
  };

  int build(const data::Dataset& d, const std::vector<int>& rows, int depth);

  TreeConfig config_;
  std::vector<Node> nodes_;
  int num_features_ = 0;
};

}  // namespace kml::dtree
