#include "dtree/decision_tree.h"

#include "portability/file.h"
#include "portability/log.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace kml::dtree {
namespace {

constexpr std::uint32_t kTreeMagic = 0x544c4d4b;  // "KMLT"
constexpr std::uint32_t kTreeVersion = 1;

// Gini impurity of a label histogram.
double gini(const std::vector<int>& counts, int total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (int c : counts) {
    const double p = static_cast<double>(c) / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

int majority(const std::vector<int>& counts) {
  int best = 0;
  for (std::size_t i = 1; i < counts.size(); ++i) {
    if (counts[i] > counts[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace

void DecisionTree::fit(const data::Dataset& train) {
  assert(train.size() > 0);
  nodes_.clear();
  num_features_ = train.num_features();
  std::vector<int> rows(static_cast<std::size_t>(train.size()));
  for (int i = 0; i < train.size(); ++i) rows[static_cast<std::size_t>(i)] = i;
  build(train, rows, 0);
}

int DecisionTree::build(const data::Dataset& d, const std::vector<int>& rows,
                        int depth) {
  const int nc = d.num_classes();
  std::vector<int> counts(static_cast<std::size_t>(nc), 0);
  for (int r : rows) ++counts[static_cast<std::size_t>(d.label(r))];

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[static_cast<std::size_t>(node_index)].label = majority(counts);
  nodes_[static_cast<std::size_t>(node_index)].depth = depth;
  nodes_[static_cast<std::size_t>(node_index)].rows =
      static_cast<int>(rows.size());

  const double parent_gini = gini(counts, static_cast<int>(rows.size()));
  const bool pure = parent_gini <= 0.0;
  if (pure || depth >= config_.max_depth ||
      static_cast<int>(rows.size()) < config_.min_samples_split) {
    return node_index;  // leaf
  }

  // Exhaustive best-split search: for each feature, sort rows by value and
  // sweep candidate thresholds between distinct adjacent values.
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = config_.min_gain;

  std::vector<int> sorted = rows;
  for (int f = 0; f < d.num_features(); ++f) {
    std::sort(sorted.begin(), sorted.end(), [&](int a, int b) {
      return d.features(a)[f] < d.features(b)[f];
    });
    std::vector<int> left_counts(static_cast<std::size_t>(nc), 0);
    std::vector<int> right_counts = counts;
    const int n = static_cast<int>(sorted.size());
    for (int i = 0; i < n - 1; ++i) {
      const int r = sorted[static_cast<std::size_t>(i)];
      ++left_counts[static_cast<std::size_t>(d.label(r))];
      --right_counts[static_cast<std::size_t>(d.label(r))];
      const double v = d.features(r)[f];
      const double v_next = d.features(sorted[static_cast<std::size_t>(i + 1)])[f];
      if (v_next <= v) continue;  // no threshold separates equal values
      const int nl = i + 1;
      const int nr = n - nl;
      const double weighted =
          (static_cast<double>(nl) * gini(left_counts, nl) +
           static_cast<double>(nr) * gini(right_counts, nr)) /
          static_cast<double>(n);
      const double gain = parent_gini - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (v + v_next);
      }
    }
  }

  if (best_feature < 0) return node_index;  // no useful split: leaf

  std::vector<int> left_rows;
  std::vector<int> right_rows;
  for (int r : rows) {
    (d.features(r)[best_feature] <= best_threshold ? left_rows : right_rows)
        .push_back(r);
  }
  assert(!left_rows.empty() && !right_rows.empty());

  // Recurse; note nodes_ may reallocate, so write fields via index after.
  const int left = build(d, left_rows, depth + 1);
  const int right = build(d, right_rows, depth + 1);
  Node& node = nodes_[static_cast<std::size_t>(node_index)];
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  node.gain = best_gain;
  return node_index;
}

std::vector<double> DecisionTree::feature_importance() const {
  std::vector<double> importance(static_cast<std::size_t>(num_features_),
                                 0.0);
  if (nodes_.empty()) return importance;
  const double total_rows = nodes_.front().rows;
  double sum = 0.0;
  for (const Node& node : nodes_) {
    if (node.feature < 0) continue;  // leaf
    const double weighted = node.gain * node.rows / total_rows;
    importance[static_cast<std::size_t>(node.feature)] += weighted;
    sum += weighted;
  }
  if (sum > 0.0) {
    for (double& v : importance) v /= sum;
  }
  return importance;
}

std::string DecisionTree::to_text(const char* const* feature_names) const {
  std::string out;
  char line[256];
  for (const Node& node : nodes_) {
    std::string indent(static_cast<std::size_t>(node.depth) * 2, ' ');
    if (node.feature < 0) {
      std::snprintf(line, sizeof(line), "%sleaf: class %d (n=%d)\n",
                    indent.c_str(), node.label, node.rows);
    } else if (feature_names != nullptr) {
      std::snprintf(line, sizeof(line),
                    "%sif %s <= %.4f (n=%d, gain=%.4f)\n", indent.c_str(),
                    feature_names[node.feature], node.threshold, node.rows,
                    node.gain);
    } else {
      std::snprintf(line, sizeof(line),
                    "%sif f[%d] <= %.4f (n=%d, gain=%.4f)\n", indent.c_str(),
                    node.feature, node.threshold, node.rows, node.gain);
    }
    out += line;
  }
  return out;
}

int DecisionTree::predict(const double* features, int n) const {
  assert(trained());
  assert(n == num_features_);
  (void)n;
  int idx = 0;
  for (;;) {
    const Node& node = nodes_[static_cast<std::size_t>(idx)];
    if (node.left < 0) return node.label;
    idx = features[node.feature] <= node.threshold ? node.left : node.right;
  }
}

matrix::MatI DecisionTree::predict(const matrix::MatD& x) const {
  matrix::MatI out(x.rows(), 1);
  for (int i = 0; i < x.rows(); ++i) {
    out.at(i, 0) = predict(x.row(i), x.cols());
  }
  return out;
}

double DecisionTree::accuracy(const data::Dataset& test) const {
  if (test.size() == 0) return 0.0;
  int correct = 0;
  for (int i = 0; i < test.size(); ++i) {
    if (predict(test.features(i), test.num_features()) == test.label(i)) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / test.size();
}

int DecisionTree::depth() const {
  int mx = 0;
  for (const Node& n : nodes_) mx = std::max(mx, n.depth);
  return mx;
}

bool DecisionTree::save(const char* path) const {
  KmlFile* f = kml_fopen(path, "w");
  if (f == nullptr) return false;
  bool ok = true;
  auto w32 = [&](std::uint32_t v) {
    ok = ok && kml_fwrite(f, &v, sizeof(v)) == sizeof(v);
  };
  w32(kTreeMagic);
  w32(kTreeVersion);
  w32(static_cast<std::uint32_t>(num_features_));
  w32(static_cast<std::uint32_t>(nodes_.size()));
  for (const Node& n : nodes_) {
    ok = ok && kml_fwrite(f, &n, sizeof(n)) == sizeof(n);
  }
  kml_fclose(f);
  return ok;
}

bool DecisionTree::load(const char* path) {
  KmlFile* f = kml_fopen(path, "r");
  if (f == nullptr) return false;
  bool ok = true;
  auto r32 = [&](std::uint32_t& v) {
    ok = ok && kml_fread(f, &v, sizeof(v)) == sizeof(v);
  };
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t nfeat = 0;
  std::uint32_t nnodes = 0;
  r32(magic);
  r32(version);
  r32(nfeat);
  r32(nnodes);
  ok = ok && magic == kTreeMagic && version == kTreeVersion &&
       nnodes <= (1u << 24);
  std::vector<Node> nodes;
  if (ok) {
    nodes.resize(nnodes);
    for (Node& n : nodes) {
      ok = ok && kml_fread(f, &n, sizeof(n)) == sizeof(n);
    }
  }
  kml_fclose(f);
  if (!ok) {
    KML_ERROR("DecisionTree::load: failed to parse %s", path);
    return false;
  }
  // Validate child indices before installing.
  for (const Node& n : nodes) {
    if (n.left >= static_cast<int>(nodes.size()) ||
        n.right >= static_cast<int>(nodes.size())) {
      return false;
    }
  }
  num_features_ = static_cast<int>(nfeat);
  nodes_ = std::move(nodes);
  return true;
}

}  // namespace kml::dtree
