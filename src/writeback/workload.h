// writeback/workload.h — the page-cache (writeback) case study.
//
// §6 future work: "We plan to apply KML to other storage subsystems:
// e.g., ... the page cache." This module does exactly that on the
// simulated stack: buffered writers dirty pages, the WritebackDaemon's
// threshold decides when they are flushed, and the tunable has a
// workload-dependent optimum —
//
//   * a sequential writer wants a HIGH threshold (flushes batch into long
//     contiguous device commands),
//   * a writer competing with a hot read working set wants a LOW-to-MID
//     threshold (dirty pages that reach the LRU tail are written back one
//     page at a time by reclaim — the expensive path).
//
// The study mirrors §4's readahead methodology: sweep the knob per
// workload (bench_writeback), then close the loop with the label-free
// Q-learning tuner actuating the threshold instead of the readahead size.
#pragma once

#include "readahead/rl_tuner.h"
#include "sim/stack.h"
#include "sim/writeback.h"

#include <cstdint>

namespace kml::writeback {

enum class WbKind : int {
  kSeqWriter = 0,    // append-style sequential buffered writes
  kRandWriter = 1,   // scattered buffered writes
  kMixed = 2,        // random writes + hot random reads (cache pressure)
};

const char* wb_kind_name(WbKind kind);
inline constexpr int kNumWbKinds = 3;

struct WbConfig {
  WbKind kind = WbKind::kMixed;
  std::uint64_t file_pages = 1 << 19;  // 2 GiB working file
  std::uint64_t seed = 11;
  // Mixed workload: reads per write, and the hot-set size the reads hit.
  int reads_per_write = 3;
  std::uint64_t hot_pages = 24'000;  // vs the 32768-page cache
  std::uint64_t cpu_ns_per_op = 1'000;
};

struct WbRunResult {
  std::uint64_t ops = 0;
  double ops_per_sec = 0.0;
  sim::WritebackStats writeback;
  std::uint64_t dirty_evictions = 0;  // the reclaim-writeback penalty paid
};

// Drive `config.kind` against the stack for `duration_ns` of virtual time,
// polling the daemon after every op. `on_tick` (optional) receives the
// virtual time after each op — the hook the RL tuner drives from.
WbRunResult run_wb_workload(
    sim::StorageStack& stack, sim::WritebackDaemon& daemon,
    const WbConfig& config, std::uint64_t duration_ns,
    const std::function<void(std::uint64_t now_ns, std::uint64_t ops)>&
        on_tick = {});

// The "studying the problem" sweep: ops/sec per (kind, threshold).
struct WbSweepPoint {
  WbKind kind;
  std::uint64_t threshold_pages;
  double ops_per_sec;
  std::uint64_t dirty_evictions;
};

std::vector<WbSweepPoint> writeback_sweep(
    const sim::StackConfig& stack_config,
    const std::vector<WbKind>& kinds,
    const std::vector<std::uint64_t>& thresholds_pages,
    std::uint64_t seconds);

// Closed loop: fixed default threshold vs the Q-learning agent actuating
// the threshold online (reward = ops per window). Post-warmup throughput.
struct WbEvalOutcome {
  double fixed_ops_per_sec = 0.0;      // at `default_threshold`
  double rl_ops_per_sec = 0.0;         // post-warmup
  double speedup = 0.0;
  std::vector<readahead::RlTimelinePoint> timeline;
};

WbEvalOutcome evaluate_wb_rl(const sim::StackConfig& stack_config,
                             const WbConfig& config,
                             std::uint64_t default_threshold_pages,
                             const readahead::RlConfig& rl_config,
                             std::uint64_t seconds,
                             std::uint64_t warmup_seconds);

}  // namespace kml::writeback
