#include "writeback/workload.h"

#include "math/rng.h"

namespace kml::writeback {

const char* wb_kind_name(WbKind kind) {
  switch (kind) {
    case WbKind::kSeqWriter: return "seqwriter";
    case WbKind::kRandWriter: return "randwriter";
    case WbKind::kMixed: return "mixed-rw";
  }
  return "unknown";
}

WbRunResult run_wb_workload(
    sim::StorageStack& stack, sim::WritebackDaemon& daemon,
    const WbConfig& config, std::uint64_t duration_ns,
    const std::function<void(std::uint64_t now_ns, std::uint64_t ops)>&
        on_tick) {
  sim::FileHandle& file = stack.files().create(config.file_pages);
  math::Rng rng(config.seed);

  const std::uint64_t start = stack.clock().now_ns();
  const std::uint64_t deadline = start + duration_ns;
  std::uint64_t ops = 0;
  std::uint64_t seq_cursor = 0;
  int op_index = 0;

  const std::uint64_t dirty_evictions_before =
      stack.cache().stats().dirty_evictions;

  while (stack.clock().now_ns() < deadline) {
    switch (config.kind) {
      case WbKind::kSeqWriter:
        stack.cache().write(file, seq_cursor, 1);
        seq_cursor = (seq_cursor + 1) % config.file_pages;
        break;
      case WbKind::kRandWriter:
        stack.cache().write(file, rng.next_below(config.file_pages), 1);
        break;
      case WbKind::kMixed:
        if (op_index % (config.reads_per_write + 1) == 0) {
          stack.cache().write(file, rng.next_below(config.file_pages), 1);
        } else {
          // Hot reads: the working set the writeback dirt competes with.
          stack.cache().read(file, rng.next_below(config.hot_pages), 1);
        }
        break;
    }
    stack.charge_cpu_ns(config.cpu_ns_per_op);
    daemon.poll();
    ++ops;
    ++op_index;
    if (on_tick) on_tick(stack.clock().now_ns(), ops);
  }

  WbRunResult result;
  result.ops = ops;
  const std::uint64_t elapsed = stack.clock().now_ns() - start;
  result.ops_per_sec =
      elapsed == 0 ? 0.0 : static_cast<double>(ops) * 1e9 / elapsed;
  result.writeback = daemon.stats();
  result.dirty_evictions =
      stack.cache().stats().dirty_evictions - dirty_evictions_before;
  return result;
}

std::vector<WbSweepPoint> writeback_sweep(
    const sim::StackConfig& stack_config,
    const std::vector<WbKind>& kinds,
    const std::vector<std::uint64_t>& thresholds_pages,
    std::uint64_t seconds) {
  std::vector<WbSweepPoint> points;
  for (WbKind kind : kinds) {
    for (std::uint64_t threshold : thresholds_pages) {
      sim::StorageStack stack(stack_config);
      sim::WritebackDaemon daemon(stack.cache(), threshold);
      WbConfig config;
      config.kind = kind;
      const WbRunResult r = run_wb_workload(stack, daemon, config,
                                            seconds * sim::kNsPerSec);
      points.push_back(
          WbSweepPoint{kind, threshold, r.ops_per_sec, r.dirty_evictions});
    }
  }
  return points;
}

WbEvalOutcome evaluate_wb_rl(const sim::StackConfig& stack_config,
                             const WbConfig& config,
                             std::uint64_t default_threshold_pages,
                             const readahead::RlConfig& rl_config,
                             std::uint64_t seconds,
                             std::uint64_t warmup_seconds) {
  WbEvalOutcome outcome;
  {
    sim::StorageStack stack(stack_config);
    sim::WritebackDaemon daemon(stack.cache(), default_threshold_pages);
    const WbRunResult r = run_wb_workload(stack, daemon, config,
                                          seconds * sim::kNsPerSec);
    outcome.fixed_ops_per_sec = r.ops_per_sec;
  }
  {
    sim::StorageStack stack(stack_config);
    sim::WritebackDaemon daemon(stack.cache(), default_threshold_pages);
    // The generic Q-learning tuner with a writeback actuator: action
    // values are interpreted as dirty-page thresholds.
    readahead::QLearningTuner agent(
        stack, rl_config, [&daemon](std::uint32_t threshold_pages) {
          daemon.set_threshold_pages(threshold_pages);
        });
    run_wb_workload(stack, daemon, config, seconds * sim::kNsPerSec,
                    [&agent](std::uint64_t now_ns, std::uint64_t ops) {
                      agent.on_tick(now_ns, ops);
                    });
    outcome.timeline = agent.timeline();

    // Exclude the exploration transient, but never everything: with short
    // runs fall back to the whole timeline.
    if (warmup_seconds >= outcome.timeline.size()) warmup_seconds = 0;
    double post_ops = 0.0;
    std::uint64_t post_windows = 0;
    for (const readahead::RlTimelinePoint& p : outcome.timeline) {
      if (p.window < warmup_seconds) continue;
      post_ops += p.reward;
      ++post_windows;
    }
    outcome.rl_ops_per_sec =
        post_windows > 0 ? post_ops / static_cast<double>(post_windows)
                         : 0.0;
  }
  outcome.speedup = outcome.fixed_ops_per_sec > 0.0
                        ? outcome.rl_ops_per_sec / outcome.fixed_ops_per_sec
                        : 0.0;
  return outcome;
}

}  // namespace kml::writeback
