// markov.h — Markov-chain prefetching baseline (Laga et al., NVMSA '16).
//
// The paper's related-work comparison: "Laga et al. implemented Markov
// chain models to improve readahead performance in the Linux kernel...
// our readahead model's kernel memory consumption is less than 4KB,
// compared to Laga et al.'s Markov model which consumed 94MB."
//
// This baseline learns a first-order Markov chain over *data-block*
// transitions (block = block_pages consecutive pages) from the page-cache
// insert stream, and prefetches the most likely successor block whenever
// the observed transition probability clears a confidence threshold.
// Kernel readahead is left at its default; the Markov prefetcher adds
// speculative block reads on top — faithful to Lynx's design point, and
// demonstrating the memory/accuracy tradeoff the paper criticizes: the
// transition table grows with the block count (i.e., with device size),
// not with model complexity.
#pragma once

#include "sim/stack.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace kml::baselines {

struct MarkovConfig {
  std::uint32_t block_pages = 16;
  // Successors remembered per block (Lynx keeps a small candidate set).
  int max_successors = 4;
  // Minimum observed transition share before prefetching.
  double confidence = 0.5;
  // Transitions observed before a block's statistics are trusted.
  std::uint32_t min_observations = 3;
  // Lookahead: when a predicted block is issued, its own most-likely
  // successor is chained up to this depth. Without chaining the pipeline
  // stalls — prefetched blocks are cache hits and hits emit no
  // add_to_page_cache events to re-prime the predictor.
  int chain_depth = 4;
};

class MarkovPrefetcher {
 public:
  MarkovPrefetcher(sim::StorageStack& stack, const MarkovConfig& config);
  ~MarkovPrefetcher();

  MarkovPrefetcher(const MarkovPrefetcher&) = delete;
  MarkovPrefetcher& operator=(const MarkovPrefetcher&) = delete;

  // Issue pending predicted prefetches (call from the workload tick; real
  // Lynx runs its predictor off the I/O completion path).
  void on_tick();

  // Approximate memory held by the transition table, in bytes — the
  // number the paper contrasts with KML's <4KB model.
  std::size_t memory_bytes() const;

  std::uint64_t transitions_learned() const { return transitions_; }
  std::uint64_t prefetches_issued() const { return prefetches_; }

 private:
  struct Successor {
    std::uint64_t block;
    std::uint32_t count;
  };
  struct BlockState {
    std::vector<Successor> successors;
    std::uint32_t total = 0;
  };
  struct PendingPrefetch {
    std::uint64_t inode;
    std::uint64_t block;
    int depth;  // remaining chain budget
  };

  void observe(std::uint64_t inode, std::uint64_t block);
  // Most likely successor of `block` clearing the confidence bar, or
  // UINT64_MAX.
  std::uint64_t predict(std::uint64_t inode, std::uint64_t block) const;

  sim::StorageStack& stack_;
  MarkovConfig config_;
  int hook_handle_;
  // (inode, block) keyed transition table.
  std::unordered_map<std::uint64_t,
                     std::unordered_map<std::uint64_t, BlockState>>
      table_;
  std::unordered_map<std::uint64_t, std::uint64_t> last_block_;  // per inode
  std::vector<PendingPrefetch> pending_;
  bool issuing_ = false;
  std::uint64_t transitions_ = 0;
  std::uint64_t prefetches_ = 0;
};

}  // namespace kml::baselines
