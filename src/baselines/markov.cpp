#include "baselines/markov.h"

namespace kml::baselines {

MarkovPrefetcher::MarkovPrefetcher(sim::StorageStack& stack,
                                   const MarkovConfig& config)
    : stack_(stack), config_(config) {
  // Learn from demand traffic: every page-cache insert maps to its block.
  hook_handle_ = stack_.tracepoints().register_hook(
      [this](const sim::TraceEvent& ev) {
        if (issuing_) return;  // don't learn from our own prefetches
        observe(ev.inode, ev.pgoff / config_.block_pages);
      },
      sim::trace_mask(sim::TraceEventType::kAddToPageCache));
}

MarkovPrefetcher::~MarkovPrefetcher() {
  stack_.tracepoints().unregister(hook_handle_);
}

void MarkovPrefetcher::observe(std::uint64_t inode, std::uint64_t block) {
  auto last = last_block_.find(inode);
  if (last != last_block_.end() && last->second != block) {
    BlockState& state = table_[inode][last->second];
    ++state.total;
    ++transitions_;
    bool found = false;
    for (Successor& s : state.successors) {
      if (s.block == block) {
        ++s.count;
        found = true;
        break;
      }
    }
    if (!found) {
      if (static_cast<int>(state.successors.size()) <
          config_.max_successors) {
        state.successors.push_back(Successor{block, 1});
      } else {
        // Evict the weakest candidate (Lynx-style bounded candidate set).
        std::size_t weakest = 0;
        for (std::size_t i = 1; i < state.successors.size(); ++i) {
          if (state.successors[i].count < state.successors[weakest].count) {
            weakest = i;
          }
        }
        state.successors[weakest] = Successor{block, 1};
      }
    }

    // Predict the successor of the block we just entered.
    const std::uint64_t next = predict(inode, block);
    if (next != UINT64_MAX) {
      pending_.push_back(PendingPrefetch{inode, next, config_.chain_depth});
    }
  }
  last_block_[inode] = block;
}

std::uint64_t MarkovPrefetcher::predict(std::uint64_t inode,
                                        std::uint64_t block) const {
  const auto per_inode = table_.find(inode);
  if (per_inode == table_.end()) return UINT64_MAX;
  const auto entry = per_inode->second.find(block);
  if (entry == per_inode->second.end() ||
      entry->second.total < config_.min_observations) {
    return UINT64_MAX;
  }
  const BlockState& state = entry->second;
  for (const Successor& s : state.successors) {
    if (static_cast<double>(s.count) / state.total >= config_.confidence) {
      return s.block;
    }
  }
  return UINT64_MAX;
}

void MarkovPrefetcher::on_tick() {
  if (pending_.empty()) return;
  std::vector<PendingPrefetch> batch;
  batch.swap(pending_);
  issuing_ = true;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const PendingPrefetch p = batch[i];
    if (!stack_.files().exists(p.inode)) continue;
    sim::FileHandle& file = stack_.files().get(p.inode);
    const std::uint64_t start = p.block * config_.block_pages;
    if (start >= file.size_pages) continue;
    const bool already_cached = stack_.cache().cached(file.inode, start);
    if (!already_cached) {
      stack_.cache().do_readahead(file, start, config_.block_pages,
                                  sim::PageCache::kNoMarker,
                                  /*faulting=*/sim::PageCache::kNoMarker);
      ++prefetches_;
    }
    // Chain the lookahead: a prefetched block will be a cache hit and emit
    // no event, so extend the pipeline from the table now.
    if (p.depth > 0) {
      const std::uint64_t next = predict(p.inode, p.block);
      if (next != UINT64_MAX) {
        batch.push_back(PendingPrefetch{p.inode, next, p.depth - 1});
      }
    }
  }
  issuing_ = false;
}

std::size_t MarkovPrefetcher::memory_bytes() const {
  std::size_t total = 0;
  for (const auto& [inode, blocks] : table_) {
    total += sizeof(inode);
    for (const auto& [block, state] : blocks) {
      total += sizeof(block) + sizeof(BlockState) +
               state.successors.size() * sizeof(Successor);
    }
  }
  total += last_block_.size() * 2 * sizeof(std::uint64_t);
  return total;
}

}  // namespace kml::baselines
