// file.h — file abstraction carried through the simulated storage stack.
//
// A FileHandle is the moral equivalent of a `struct file`: it owns the
// per-file readahead state (`f_ra` in Linux) including `ra_pages`, which is
// exactly the field the paper's KML application updates when it actuates a
// new readahead size.
#pragma once

#include "sim/device.h"

#include <cstdint>
#include <unordered_map>

namespace kml::sim {

// Per-file readahead window state — the fields of Linux's
// `struct file_ra_state` that the ondemand algorithm uses.
struct ReadaheadState {
  std::uint64_t start = 0;       // first page of the current window
  std::uint64_t size = 0;        // window length in pages (0 = none)
  std::uint64_t async_size = 0;  // trailing part that re-arms readahead
  std::uint64_t prev_pos = UINT64_MAX;  // last page accessed (sequential
                                        // detection); UINT64_MAX = none
};

struct FileHandle {
  std::uint64_t inode = 0;
  std::uint64_t size_pages = 0;
  std::uint32_t ra_pages = 32;  // max readahead window, pages
  ReadaheadState ra;
};

class FileTable {
 public:
  explicit FileTable(std::uint32_t default_ra_kb)
      : default_ra_pages_(kb_to_pages(default_ra_kb)) {}

  // Create a file of `size_pages`; readahead defaults to the device value.
  FileHandle& create(std::uint64_t size_pages);

  // Remove a file (e.g., a compacted-away sorted run).
  void remove(std::uint64_t inode);

  FileHandle& get(std::uint64_t inode);
  const FileHandle& get(std::uint64_t inode) const;
  bool exists(std::uint64_t inode) const;
  std::size_t count() const { return files_.size(); }

  std::uint32_t default_ra_pages() const { return default_ra_pages_; }
  void set_default_ra_pages(std::uint32_t pages) {
    default_ra_pages_ = pages;
  }

  static std::uint32_t kb_to_pages(std::uint32_t kb) {
    return kb * 1024 / static_cast<std::uint32_t>(kPageSize);
  }
  static std::uint32_t pages_to_kb(std::uint32_t pages) {
    return pages * static_cast<std::uint32_t>(kPageSize) / 1024;
  }

  // Iterate all live files (for block-layer-wide readahead updates).
  template <typename F>
  void for_each(F f) {
    for (auto& [inode, file] : files_) f(file);
  }

 private:
  std::uint64_t next_inode_ = 1;
  std::uint32_t default_ra_pages_;
  std::unordered_map<std::uint64_t, FileHandle> files_;
};

}  // namespace kml::sim
