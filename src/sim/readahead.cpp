#include "sim/readahead.h"

#include "portability/bits.h"
#include "sim/page_cache.h"

namespace kml::sim {

std::uint64_t ReadaheadEngine::init_window(std::uint64_t req,
                                           std::uint64_t max) {
  // Guarded shared round-up (portability/bits.h): the local copy this
  // replaced spun forever for req > 2^63 — the same bug class PR 2 fixed
  // in CircularBuffer. The clamp is harmless here: the result is capped to
  // `max` immediately below.
  std::uint64_t size = kml_round_up_pow2(req);
  if (size <= max / 32) {
    size *= 4;
  } else if (size <= max / 4) {
    size *= 2;
  } else {
    size = max;
  }
  return size < max ? size : max;
}

std::uint64_t ReadaheadEngine::next_window(std::uint64_t cur,
                                           std::uint64_t max) {
  std::uint64_t size = cur < max / 16 ? cur * 4 : cur * 2;
  return size < max ? size : max;
}

void ReadaheadEngine::on_sync_miss(PageCache& cache, FileHandle& file,
                                   std::uint64_t pgoff) {
  const std::uint64_t max = file.ra_pages;
  constexpr std::uint64_t req = 1;  // the per-page fault path

  if (max == 0) {
    // Readahead disabled: demand-read the single page.
    ++stats_.random_reads;
    cache.do_readahead(file, pgoff, 1, PageCache::kNoMarker, pgoff);
    file.ra.prev_pos = pgoff;
    return;
  }

  const bool at_start = pgoff == 0;
  const bool sequential = file.ra.prev_pos != UINT64_MAX &&
                          (pgoff == file.ra.prev_pos + 1 ||
                           pgoff == file.ra.prev_pos);
  if (at_start || sequential) {
    // Sequential (or first) access: open a ramping window.
    file.ra.start = pgoff;
    file.ra.size = init_window(req, max);
    file.ra.async_size =
        file.ra.size > req ? file.ra.size - req : file.ra.size;
    ++stats_.sync_windows;
    submit(cache, file, pgoff);
    file.ra.prev_pos = pgoff;
    return;
  }

  // Random access: read exactly the demanded page, leave window state
  // untouched (kernel behaviour: small random I/O must not pollute).
  ++stats_.random_reads;
  cache.do_readahead(file, pgoff, req, PageCache::kNoMarker, pgoff);
  file.ra.prev_pos = pgoff;
}

void ReadaheadEngine::on_marker_hit(PageCache& cache, FileHandle& file,
                                    std::uint64_t pgoff) {
  const std::uint64_t max = file.ra_pages;
  if (max == 0) return;

  // Ramp: the next window starts where the current one ends.
  file.ra.start = file.ra.start + file.ra.size;
  // Re-sync if the marker page is outside what we believe the window is
  // (e.g., ra_pages changed under us — exactly what the KML tuner does).
  if (pgoff >= file.ra.start) file.ra.start = pgoff + 1;
  file.ra.size = next_window(file.ra.size == 0 ? 1 : file.ra.size, max);
  file.ra.async_size = file.ra.size;
  ++stats_.async_windows;
  submit(cache, file, pgoff);
  file.ra.prev_pos = pgoff;
}

void ReadaheadEngine::submit(PageCache& cache, FileHandle& file,
                             std::uint64_t pgoff) {
  std::uint64_t start = file.ra.start;
  std::uint64_t size = file.ra.size;
  if (start >= file.size_pages) return;
  if (start + size > file.size_pages) size = file.size_pages - start;
  if (size == 0) return;

  // PG_readahead marker sits async_size pages before the window end; when
  // the reader reaches it the next window is issued, keeping the pipeline
  // full.
  std::uint64_t marker = PageCache::kNoMarker;
  if (file.ra.async_size > 0 && file.ra.async_size <= size) {
    marker = start + size - file.ra.async_size;
  }
  cache.do_readahead(file, start, size, marker, pgoff);
}

}  // namespace kml::sim
