// writeback.h — the background flusher daemon, with a tunable threshold.
//
// The simulated analogue of Linux's dirty-page writeback machinery
// (vm.dirty_ratio / the flusher threads): dirty pages accumulate in the
// page cache until the daemon's threshold is crossed, then everything is
// flushed in batched contiguous commands. The threshold is a classic
// storage-tuning knob with a workload-dependent optimum:
//
//   * high threshold — large, well-batched flushes (few commands, long
//     sequential runs) but dirty pages reach the LRU tail under memory
//     pressure and are written back one page at a time by reclaim — the
//     expensive path;
//   * low threshold — reclaim never sees dirty pages, but scattered dirty
//     sets flush as many tiny commands.
//
// This is the actuation surface of the second KML case study (the paper's
// §6 "apply KML to ... the page cache"): src/writeback tunes this
// threshold online.
#pragma once

#include "sim/page_cache.h"

#include <cstdint>

namespace kml::sim {

struct WritebackStats {
  std::uint64_t flushes = 0;       // threshold-triggered sweeps
  std::uint64_t pages_flushed = 0;
};

class WritebackDaemon {
 public:
  // `threshold_pages`: flush when the cache holds more dirty pages than
  // this. 0 means write-through (flush on every poll with any dirt).
  WritebackDaemon(PageCache& cache, std::uint64_t threshold_pages)
      : cache_(cache), threshold_(threshold_pages) {}

  // Poll hook — call from the op tick (the flusher "wakes up"). Flushes
  // everything when over threshold.
  void poll() {
    if (cache_.dirty_pages() > threshold_) {
      ++stats_.flushes;
      stats_.pages_flushed += cache_.sync_all();
    }
  }

  std::uint64_t threshold_pages() const { return threshold_; }
  void set_threshold_pages(std::uint64_t pages) { threshold_ = pages; }

  const WritebackStats& stats() const { return stats_; }

 private:
  PageCache& cache_;
  std::uint64_t threshold_;
  WritebackStats stats_;
};

}  // namespace kml::sim
