// stack.h — convenience bundle of one simulated storage stack.
//
// Wires clock -> device -> page cache -> tracepoints -> block layer in the
// layering of Figure 1. MiniKV and the benchmarks construct one of these per
// run.
#pragma once

#include "sim/block_layer.h"
#include "sim/clock.h"
#include "sim/device.h"
#include "sim/file.h"
#include "sim/page_cache.h"
#include "sim/tracepoint.h"

namespace kml::sim {

struct StackConfig {
  DeviceConfig device = nvme_config();
  std::uint64_t cache_pages = 32768;  // 128 MiB page cache
  // Initial reclaim policy (the eviction tuner re-actuates at run time).
  EvictionPolicyType eviction_policy = EvictionPolicyType::kLru;
  EvictionParams eviction_params;
};

class StorageStack {
 public:
  explicit StorageStack(const StackConfig& config)
      : device_(config.device, clock_),
        files_(config.device.default_ra_kb),
        cache_(config.cache_pages, clock_, device_, tracepoints_,
               config.eviction_policy, config.eviction_params),
        block_layer_(files_) {}

  SimClock& clock() { return clock_; }
  Device& device() { return device_; }
  FileTable& files() { return files_; }
  PageCache& cache() { return cache_; }
  TracepointRegistry& tracepoints() { return tracepoints_; }
  BlockLayer& block_layer() { return block_layer_; }

  // Charge CPU time (application compute between I/Os) on the virtual
  // clock.
  void charge_cpu_ns(std::uint64_t ns) { clock_.advance(ns); }

 private:
  SimClock clock_;
  TracepointRegistry tracepoints_;
  Device device_;
  FileTable files_;
  PageCache cache_;
  BlockLayer block_layer_;
};

}  // namespace kml::sim
