// readahead.h — port of Linux's ondemand readahead heuristic.
//
// This is the "aging heuristic" the paper's ML model competes with
// (mm/readahead.c, ondemand_readahead): per-file windows that ramp up
// 4x/2x on detected sequential streams, a PG_readahead marker page that
// re-arms the next window asynchronously, and single-page reads for random
// access. The maximum window is file.ra_pages — the single knob the KML
// readahead model tunes.
//
// Window sizing matches kernel logic:
//   get_init_ra_size: roundup_pow2(req); <=max/32 -> 4x, <=max/4 -> 2x,
//                     else max
//   get_next_ra_size: <max/16 -> 4x, else 2x, capped at max
#pragma once

#include "sim/file.h"

#include <cstdint>

namespace kml::sim {

class PageCache;  // submits windows back through PageCache::do_readahead

struct ReadaheadEngineStats {
  std::uint64_t sync_windows = 0;    // windows from a cache miss
  std::uint64_t async_windows = 0;   // windows from a marker hit
  std::uint64_t random_reads = 0;    // single-page fallback reads
};

class ReadaheadEngine {
 public:
  // Cache miss on `pgoff`: decide the synchronous window and submit it.
  void on_sync_miss(PageCache& cache, FileHandle& file, std::uint64_t pgoff);

  // Cache hit on a marker page: extend the window asynchronously.
  void on_marker_hit(PageCache& cache, FileHandle& file, std::uint64_t pgoff);

  const ReadaheadEngineStats& stats() const { return stats_; }
  void reset_stats() { stats_ = ReadaheadEngineStats{}; }

  static std::uint64_t init_window(std::uint64_t req, std::uint64_t max);
  static std::uint64_t next_window(std::uint64_t cur, std::uint64_t max);

 private:
  void submit(PageCache& cache, FileHandle& file, std::uint64_t pgoff);

  ReadaheadEngineStats stats_;
};

}  // namespace kml::sim
