// eviction_policy.h — pluggable page-reclaim decision logic.
//
// The eviction case study needs the same seam for reclaim that ra_pages is
// for readahead: a knob the ML tuner can actuate per workload phase. The
// PageCache owns page storage (stable slot indices) and all accounting;
// a policy owns only the *ordering* state — which resident slot dies next —
// and is told about the three lifecycle events that can change it.
//
// Policies:
//   * LRU    — intrusive recency list over slots; victim = list tail.
//              Decision-for-decision identical to the pre-seam PageCache
//              (pinned by the equivalence suite in eviction_test).
//   * CLOCK  — second-chance: one reference bit per slot, a hand sweeping
//              the slot ring; a set bit buys one sweep of survival. The
//              insert_ref knob is the scan-resistance control: inserting
//              with ref=0 lets one-touch (scan) pages die on the hand's
//              first pass instead of polluting a full sweep.
//   * GCLOCK — generalized CLOCK (weighted hand): a counter per slot,
//              decremented per pass, evicted at zero. Hits add hit_weight
//              (capped at max_weight), so frequently-reused pages survive
//              scans that flush pure recency orderings.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace kml::sim {

enum class EvictionPolicyType : int { kLru = 0, kClock = 1, kGclock = 2 };
inline constexpr int kNumEvictionPolicies = 3;

// Stable lowercase name ("lru", "clock", "gclock"); nullptr for bad ids.
const char* eviction_policy_name(EvictionPolicyType type);

// Per-policy knobs, actuated together with the policy type (the analogue of
// ra_pages for the reclaim side). Fields a policy does not read are inert.
struct EvictionParams {
  // CLOCK: reference-bit value for freshly inserted pages. 1 = classic
  // second-chance; 0 = scan-resistant (unreferenced one-touch pages are
  // reclaimed on the hand's first pass).
  std::uint8_t clock_insert_ref = 1;
  // GCLOCK: weight granted at insert (0 = scan-resistant), added per hit,
  // and the accumulation cap (bounds how long a once-hot page lingers).
  std::uint32_t gclock_insert_weight = 1;
  std::uint32_t gclock_hit_weight = 1;
  std::uint32_t gclock_max_weight = 8;

  bool operator==(const EvictionParams&) const = default;
};

class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;
  virtual EvictionPolicyType type() const = 0;

  // `slot` was inserted into the cache (not yet known to the policy).
  virtual void on_insert(std::uint32_t slot) = 0;
  // `slot` was accessed (read hit or re-written while resident).
  virtual void on_access(std::uint32_t slot) = 0;
  // `slot` leaves the cache for a reason other than pick_victim (drop_all,
  // policy rebuild).
  virtual void on_erase(std::uint32_t slot) = 0;
  // Choose the victim among registered slots and remove it from the
  // policy's bookkeeping. Precondition: at least one slot is registered.
  virtual std::uint32_t pick_victim() = 0;
  // Forget every slot.
  virtual void clear() = 0;
};

std::unique_ptr<EvictionPolicy> make_eviction_policy(
    EvictionPolicyType type, const EvictionParams& params);

}  // namespace kml::sim
