#include "sim/device.h"

namespace kml::sim {

DeviceConfig nvme_config() {
  return DeviceConfig{
      .name = "NVMe",
      .random_cmd_ns = 16'000,   // 16 us new-stream command
      .seq_cmd_ns = 2'000,       // 2 us streamed continuation
      .page_transfer_ns = 800,   // ~5 GB/s
      .write_cmd_ns = 12'000,
      .write_page_ns = 1'000,    // ~4 GB/s
      .default_ra_kb = 128,
  };
}

DeviceConfig sata_ssd_config() {
  return DeviceConfig{
      .name = "SSD",
      .random_cmd_ns = 70'000,   // 70 us new-stream command
      .seq_cmd_ns = 4'000,
      .page_transfer_ns = 7'500, // ~530 MB/s
      .write_cmd_ns = 60'000,
      .write_page_ns = 8'500,    // ~470 MB/s
      .default_ra_kb = 128,
  };
}

Device::Device(const DeviceConfig& config, SimClock& clock)
    : config_(config), clock_(clock) {}

std::uint64_t Device::read(std::uint64_t inode, std::uint64_t start,
                           std::uint64_t count) {
  if (count == 0) return 0;
  const bool continuation = inode == last_inode_ && start == last_end_;
  const std::uint64_t overhead =
      continuation ? config_.seq_cmd_ns : config_.random_cmd_ns;
  const std::uint64_t cost = overhead + count * config_.page_transfer_ns;

  stats_.read_commands += 1;
  if (continuation) stats_.seq_continuations += 1;
  stats_.pages_read += count;
  stats_.busy_ns += cost;

  last_inode_ = inode;
  last_end_ = start + count;
  clock_.advance(cost);
  return cost;
}

std::uint64_t Device::write(std::uint64_t inode, std::uint64_t start,
                            std::uint64_t count) {
  if (count == 0) return 0;
  (void)inode;
  (void)start;
  const std::uint64_t cost =
      config_.write_cmd_ns + count * config_.write_page_ns;
  stats_.write_commands += 1;
  stats_.pages_written += count;
  stats_.busy_ns += cost;
  // A write breaks any read stream.
  last_inode_ = UINT64_MAX;
  last_end_ = UINT64_MAX;
  clock_.advance(cost);
  return cost;
}

}  // namespace kml::sim
