// clock.h — virtual time for the storage-stack simulator.
//
// All service times (device commands, per-op CPU cost, tuner inference
// charges) advance this clock; workload throughput is ops per *virtual*
// second, which makes every benchmark deterministic and host-independent.
#pragma once

#include <cstdint>

namespace kml::sim {

inline constexpr std::uint64_t kNsPerSec = 1'000'000'000ULL;

class SimClock {
 public:
  std::uint64_t now_ns() const { return now_ns_; }
  double now_sec() const {
    return static_cast<double>(now_ns_) / static_cast<double>(kNsPerSec);
  }

  void advance(std::uint64_t ns) { now_ns_ += ns; }

  void reset() { now_ns_ = 0; }

 private:
  std::uint64_t now_ns_ = 0;
};

}  // namespace kml::sim
