#include "sim/clock.h"

// Header-only; TU kept so the build target exists per-module.
namespace kml::sim {}
