// device.h — block-device service-time models (NVMe SSD and SATA SSD).
//
// Substitution for the paper's physical testbed (see DESIGN.md §2): what the
// readahead experiment needs from a device is the *cost structure* of
// commands, not a full FTL. The model charges
//
//   cost(read of n pages) = cmd_overhead + n * page_transfer_ns
//
// where cmd_overhead is `random_cmd_ns` for a command that starts a new
// stream and the much smaller `seq_cmd_ns` when the command continues
// exactly where the previous one on the same file ended (NCQ / internal
// striping keeps streamed reads pipelined on real SSDs). This reproduces the
// first-order readahead effects: batching pages into fewer commands pays on
// sequential streams, and prefetching unneeded pages wastes transfer time —
// proportionally far more expensive on SATA (low bandwidth) than on NVMe,
// which is exactly why the paper's SSD speedups exceed its NVMe ones.
#pragma once

#include "sim/clock.h"

#include <cstdint>

namespace kml::sim {

inline constexpr std::uint64_t kPageSize = 4096;

struct DeviceConfig {
  const char* name;
  std::uint64_t random_cmd_ns;    // full command setup (new stream)
  std::uint64_t seq_cmd_ns;       // streaming continuation overhead
  std::uint64_t page_transfer_ns; // per-4KiB read transfer time
  std::uint64_t write_cmd_ns;     // write command setup
  std::uint64_t write_page_ns;    // per-4KiB write transfer time
  std::uint32_t default_ra_kb;    // block-layer default readahead (128 KiB
                                  // mirrors Linux's read_ahead_kb default)
};

// Parameters sized after entry-level datacenter parts; tests only rely on
// NVMe being uniformly faster and SATA having the higher waste/benefit
// ratio.
DeviceConfig nvme_config();      // ~5 GB/s, 16 us command setup
DeviceConfig sata_ssd_config();  // ~530 MB/s, 70 us command setup

struct DeviceStats {
  std::uint64_t read_commands = 0;
  std::uint64_t seq_continuations = 0;
  std::uint64_t pages_read = 0;
  std::uint64_t write_commands = 0;
  std::uint64_t pages_written = 0;
  std::uint64_t busy_ns = 0;
};

class Device {
 public:
  Device(const DeviceConfig& config, SimClock& clock);

  // Synchronously read `count` pages of file `inode` starting at page
  // `start`; advances the clock by the service time and returns it.
  std::uint64_t read(std::uint64_t inode, std::uint64_t start,
                     std::uint64_t count);

  // Synchronously write `count` pages.
  std::uint64_t write(std::uint64_t inode, std::uint64_t start,
                      std::uint64_t count);

  const DeviceConfig& config() const { return config_; }
  const DeviceStats& stats() const { return stats_; }
  void reset_stats() { stats_ = DeviceStats{}; }

 private:
  DeviceConfig config_;
  SimClock& clock_;
  DeviceStats stats_;
  // Stream-detection state: end of the last read command.
  std::uint64_t last_inode_ = UINT64_MAX;
  std::uint64_t last_end_ = UINT64_MAX;
};

}  // namespace kml::sim
