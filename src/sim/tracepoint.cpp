#include "sim/tracepoint.h"

#include <cassert>

namespace kml::sim {

int TracepointRegistry::register_hook(Hook hook) {
  assert(hook != nullptr);
  for (std::size_t i = 0; i < hooks_.size(); ++i) {
    if (hooks_[i] == nullptr) {
      hooks_[i] = std::move(hook);
      return static_cast<int>(i);
    }
  }
  hooks_.push_back(std::move(hook));
  return static_cast<int>(hooks_.size() - 1);
}

void TracepointRegistry::unregister(int handle) {
  if (handle < 0 || handle >= static_cast<int>(hooks_.size())) return;
  hooks_[static_cast<std::size_t>(handle)] = nullptr;
}

void TracepointRegistry::emit(TraceEventType type, std::uint64_t inode,
                              std::uint64_t pgoff, std::uint64_t time_ns) {
  ++emitted_;
  const TraceEvent ev{type, inode, pgoff, time_ns};
  for (const Hook& hook : hooks_) {
    if (hook != nullptr) hook(ev);
  }
}

int TracepointRegistry::hook_count() const {
  int n = 0;
  for (const Hook& hook : hooks_) {
    if (hook != nullptr) ++n;
  }
  return n;
}

}  // namespace kml::sim
