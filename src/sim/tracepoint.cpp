#include "sim/tracepoint.h"

#include <cassert>

namespace kml::sim {

int TracepointRegistry::register_hook(Hook hook, std::uint32_t mask) {
  assert(hook != nullptr);
  for (std::size_t i = 0; i < hooks_.size(); ++i) {
    if (hooks_[i].hook == nullptr) {
      hooks_[i] = Slot{std::move(hook), mask};
      return static_cast<int>(i);
    }
  }
  hooks_.push_back(Slot{std::move(hook), mask});
  return static_cast<int>(hooks_.size() - 1);
}

void TracepointRegistry::unregister(int handle) {
  if (handle < 0 || handle >= static_cast<int>(hooks_.size())) return;
  hooks_[static_cast<std::size_t>(handle)].hook = nullptr;
}

void TracepointRegistry::emit(TraceEventType type, std::uint64_t inode,
                              std::uint64_t pgoff, std::uint64_t time_ns) {
  ++emitted_;
  const TraceEvent ev{type, inode, pgoff, time_ns};
  const std::uint32_t bit = trace_mask(type);
  for (const Slot& slot : hooks_) {
    if (slot.hook != nullptr && (slot.mask & bit) != 0) slot.hook(ev);
  }
}

int TracepointRegistry::hook_count() const {
  int n = 0;
  for (const Slot& slot : hooks_) {
    if (slot.hook != nullptr) ++n;
  }
  return n;
}

}  // namespace kml::sim
