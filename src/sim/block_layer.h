// block_layer.h — the actuation surface: BLKRASET/BLKRAGET-style controls.
//
// §4: "the KML application changes readahead sizes using block device layer
// ioctls and updates the readahead values in struct files." This class is
// that ioctl surface against the simulated stack: it sets the device-wide
// default (affecting files opened later) and rewrites ra_pages in every
// open FileHandle (affecting in-flight streams immediately).
#pragma once

#include "sim/file.h"

#include <cstdint>

namespace kml::sim {

// posix_fadvise access-pattern hints — the manual, programmer-driven knob
// KML's automatic tuning replaces (§4 Motivation). Semantics follow Linux:
// SEQUENTIAL doubles the file's readahead window, RANDOM disables it,
// NORMAL restores the device default.
enum class Fadvise { kNormal, kSequential, kRandom };

class BlockLayer {
 public:
  explicit BlockLayer(FileTable& files) : files_(&files) {}

  // BLKRASET analogue + struct-file update, as the paper's module does.
  void set_readahead_kb(std::uint32_t kb);

  // BLKRAGET analogue.
  std::uint32_t readahead_kb() const;

  // Per-file override (fadvise-like granularity).
  void set_file_readahead_kb(std::uint64_t inode, std::uint32_t kb);
  std::uint32_t file_readahead_kb(std::uint64_t inode) const;

  // POSIX_FADV_{NORMAL,SEQUENTIAL,RANDOM} analogue.
  void fadvise(std::uint64_t inode, Fadvise advice);

  // Number of ioctl-equivalent actuations issued (tuner-overhead metric).
  std::uint64_t actuations() const { return actuations_; }

 private:
  FileTable* files_;
  std::uint64_t actuations_ = 0;
};

}  // namespace kml::sim
