#include "sim/eviction_policy.h"

#include <cassert>

namespace kml::sim {
namespace {

constexpr std::uint32_t kNoSlot = UINT32_MAX;

// Intrusive doubly-linked recency list over slot indices. Equivalent to the
// std::list the cache used before the seam, but allocation-free after the
// per-slot arrays grow, and indexable by slot in O(1).
class LruPolicy final : public EvictionPolicy {
 public:
  EvictionPolicyType type() const override {
    return EvictionPolicyType::kLru;
  }

  void on_insert(std::uint32_t slot) override {
    grow_to(slot);
    link_front(slot);
  }

  void on_access(std::uint32_t slot) override {
    unlink(slot);
    link_front(slot);
  }

  void on_erase(std::uint32_t slot) override { unlink(slot); }

  std::uint32_t pick_victim() override {
    assert(tail_ != kNoSlot);
    const std::uint32_t victim = tail_;
    unlink(victim);
    return victim;
  }

  void clear() override {
    prev_.clear();
    next_.clear();
    head_ = kNoSlot;
    tail_ = kNoSlot;
  }

 private:
  void grow_to(std::uint32_t slot) {
    if (slot >= prev_.size()) {
      prev_.resize(slot + 1, kNoSlot);
      next_.resize(slot + 1, kNoSlot);
    }
  }

  void link_front(std::uint32_t slot) {
    prev_[slot] = kNoSlot;
    next_[slot] = head_;
    if (head_ != kNoSlot) prev_[head_] = slot;
    head_ = slot;
    if (tail_ == kNoSlot) tail_ = slot;
  }

  void unlink(std::uint32_t slot) {
    const std::uint32_t p = prev_[slot];
    const std::uint32_t n = next_[slot];
    if (p != kNoSlot) next_[p] = n; else head_ = n;
    if (n != kNoSlot) prev_[n] = p; else tail_ = p;
    prev_[slot] = kNoSlot;
    next_[slot] = kNoSlot;
  }

  std::vector<std::uint32_t> prev_;
  std::vector<std::uint32_t> next_;
  std::uint32_t head_ = kNoSlot;
  std::uint32_t tail_ = kNoSlot;
};

// Shared machinery for the two clock variants: a textbook circular list of
// slots with a sweeping hand. New pages join immediately behind the hand
// (the hand reaches them last); the hand only advances while hunting for a
// victim. The variants differ solely in what a "life" counter means — 1-bit
// second chance vs an accumulated weight — expressed via the three weight
// knobs below.
class ClockBase : public EvictionPolicy {
 public:
  ClockBase(std::uint32_t insert_weight, std::uint32_t hit_weight,
            std::uint32_t max_weight)
      : insert_weight_(insert_weight),
        hit_weight_(hit_weight),
        max_weight_(max_weight) {}

  void on_insert(std::uint32_t slot) override {
    if (slot >= weight_.size()) {
      weight_.resize(slot + 1, 0);
      prev_.resize(slot + 1, kNoSlot);
      next_.resize(slot + 1, kNoSlot);
    }
    weight_[slot] = insert_weight_;
    if (hand_ == kNoSlot) {
      prev_[slot] = slot;
      next_[slot] = slot;
      hand_ = slot;
      return;
    }
    // Splice between the hand's predecessor and the hand: the new page is
    // the last the sweep will visit, as in the kernel's clock over an
    // insertion-ordered ring.
    const std::uint32_t before = prev_[hand_];
    next_[before] = slot;
    prev_[slot] = before;
    next_[slot] = hand_;
    prev_[hand_] = slot;
  }

  void on_access(std::uint32_t slot) override {
    std::uint32_t w = weight_[slot] + hit_weight_;
    if (w > max_weight_) w = max_weight_;
    weight_[slot] = w;
  }

  void on_erase(std::uint32_t slot) override { unlink(slot); }

  std::uint32_t pick_victim() override {
    assert(hand_ != kNoSlot);
    // Bounded sweep: every lap strictly decrements each surviving page, so
    // a zero-life victim appears within (max_weight + 1) laps.
    for (;;) {
      const std::uint32_t slot = hand_;
      if (weight_[slot] == 0) {
        unlink(slot);  // advances hand_ to the successor
        return slot;
      }
      --weight_[slot];
      hand_ = next_[slot];
    }
  }

  void clear() override {
    weight_.clear();
    prev_.clear();
    next_.clear();
    hand_ = kNoSlot;
  }

 private:
  void unlink(std::uint32_t slot) {
    if (next_[slot] == slot) {
      hand_ = kNoSlot;  // last page in the ring
    } else {
      next_[prev_[slot]] = next_[slot];
      prev_[next_[slot]] = prev_[slot];
      if (hand_ == slot) hand_ = next_[slot];
    }
    prev_[slot] = kNoSlot;
    next_[slot] = kNoSlot;
  }

  const std::uint32_t insert_weight_;
  const std::uint32_t hit_weight_;
  const std::uint32_t max_weight_;
  std::vector<std::uint32_t> weight_;  // remaining lives per slot
  std::vector<std::uint32_t> prev_;    // circular list links
  std::vector<std::uint32_t> next_;
  std::uint32_t hand_ = kNoSlot;
};

// CLOCK: 1-bit second chance. A hit sets the bit (cap 1); the hand clears
// it once before evicting.
class ClockPolicy final : public ClockBase {
 public:
  explicit ClockPolicy(const EvictionParams& params)
      : ClockBase(params.clock_insert_ref ? 1u : 0u, 1u, 1u) {}
  EvictionPolicyType type() const override {
    return EvictionPolicyType::kClock;
  }
};

class GclockPolicy final : public ClockBase {
 public:
  explicit GclockPolicy(const EvictionParams& params)
      : ClockBase(params.gclock_insert_weight, params.gclock_hit_weight,
                  params.gclock_max_weight) {}
  EvictionPolicyType type() const override {
    return EvictionPolicyType::kGclock;
  }
};

}  // namespace

const char* eviction_policy_name(EvictionPolicyType type) {
  switch (type) {
    case EvictionPolicyType::kLru: return "lru";
    case EvictionPolicyType::kClock: return "clock";
    case EvictionPolicyType::kGclock: return "gclock";
  }
  return nullptr;
}

std::unique_ptr<EvictionPolicy> make_eviction_policy(
    EvictionPolicyType type, const EvictionParams& params) {
  switch (type) {
    case EvictionPolicyType::kClock:
      return std::make_unique<ClockPolicy>(params);
    case EvictionPolicyType::kGclock:
      return std::make_unique<GclockPolicy>(params);
    case EvictionPolicyType::kLru:
      break;
  }
  return std::make_unique<LruPolicy>();
}

}  // namespace kml::sim
