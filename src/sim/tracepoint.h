// tracepoint.h — in-simulator analogue of the kernel tracepoints KML hooks.
//
// The paper's data-collection functions attach to built-in tracepoints
// (add_to_page_cache, writeback_dirty_page) and record the inode number,
// the page offset, and the time since module start (§4 "Data collection").
// The registry below emits exactly those events from the page cache; KML's
// readahead application registers a hook that forwards them into the
// lock-free circular buffer.
#pragma once

#include "sim/clock.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace kml::sim {

enum class TraceEventType : std::uint8_t {
  kAddToPageCache = 0,     // page inserted into the page cache
  kWritebackDirtyPage = 1, // page dirtied by a write
  // Per-access cache tracepoints (mm_filemap-style), the collection surface
  // of the eviction case study. They fire on *every* page touched by a
  // buffered read — orders of magnitude more events than the two classic
  // KML tracepoints above — so hooks subscribe per-tracepoint via the
  // register_hook mask, exactly like kernel probes attach per-tracepoint.
  kPageCacheHit = 2,       // access served from the cache
  kPageCacheMiss = 3,      // access that went to the readahead/miss path
};

// Per-tracepoint subscription masks.
constexpr std::uint32_t trace_mask(TraceEventType type) {
  return 1u << static_cast<unsigned>(type);
}
inline constexpr std::uint32_t kAllTracepoints = ~0u;
// The paper's two data-collection tracepoints (§4) — what every readahead
// consumer attaches to. Pre-existing hooks subscribe to exactly this set so
// the readahead feature stream is unchanged by the access tracepoints.
inline constexpr std::uint32_t kKmlCollectionTracepoints =
    trace_mask(TraceEventType::kAddToPageCache) |
    trace_mask(TraceEventType::kWritebackDirtyPage);
// The eviction case study's collection set: accesses plus dirtying.
inline constexpr std::uint32_t kCacheStudyTracepoints =
    trace_mask(TraceEventType::kPageCacheHit) |
    trace_mask(TraceEventType::kPageCacheMiss) |
    trace_mask(TraceEventType::kWritebackDirtyPage);

struct TraceEvent {
  TraceEventType type;
  std::uint64_t inode;
  std::uint64_t pgoff;
  std::uint64_t time_ns;  // virtual time since simulation start
};

class TracepointRegistry {
 public:
  using Hook = std::function<void(const TraceEvent&)>;

  // Returns a handle for unregister(). Hooks run synchronously at emit
  // time — like real tracepoint probes, they must be cheap and non-blocking.
  // `mask` selects which tracepoints deliver to this hook (kernel probes
  // attach per-tracepoint); the default subscribes to everything.
  int register_hook(Hook hook, std::uint32_t mask = kAllTracepoints);
  void unregister(int handle);

  void emit(TraceEventType type, std::uint64_t inode, std::uint64_t pgoff,
            std::uint64_t time_ns);

  std::uint64_t emitted() const { return emitted_; }
  int hook_count() const;

 private:
  struct Slot {
    Hook hook;  // empty slot == freed
    std::uint32_t mask = kAllTracepoints;
  };
  std::vector<Slot> hooks_;  // slot index == handle
  std::uint64_t emitted_ = 0;
};

}  // namespace kml::sim
