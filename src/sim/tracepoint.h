// tracepoint.h — in-simulator analogue of the kernel tracepoints KML hooks.
//
// The paper's data-collection functions attach to built-in tracepoints
// (add_to_page_cache, writeback_dirty_page) and record the inode number,
// the page offset, and the time since module start (§4 "Data collection").
// The registry below emits exactly those events from the page cache; KML's
// readahead application registers a hook that forwards them into the
// lock-free circular buffer.
#pragma once

#include "sim/clock.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace kml::sim {

enum class TraceEventType : std::uint8_t {
  kAddToPageCache = 0,     // page inserted into the page cache
  kWritebackDirtyPage = 1, // page dirtied by a write
};

struct TraceEvent {
  TraceEventType type;
  std::uint64_t inode;
  std::uint64_t pgoff;
  std::uint64_t time_ns;  // virtual time since simulation start
};

class TracepointRegistry {
 public:
  using Hook = std::function<void(const TraceEvent&)>;

  // Returns a handle for unregister(). Hooks run synchronously at emit
  // time — like real tracepoint probes, they must be cheap and non-blocking.
  int register_hook(Hook hook);
  void unregister(int handle);

  void emit(TraceEventType type, std::uint64_t inode, std::uint64_t pgoff,
            std::uint64_t time_ns);

  std::uint64_t emitted() const { return emitted_; }
  int hook_count() const;

 private:
  std::vector<Hook> hooks_;  // slot index == handle; empty slot == freed
  std::uint64_t emitted_ = 0;
};

}  // namespace kml::sim
