#include "sim/trace_io.h"

#include "portability/log.h"

#include <cstdio>
#include <cstring>

namespace kml::sim {
namespace {

constexpr std::size_t kRecordBytes = 1 + 8 + 8 + 8;
constexpr std::size_t kFlushThreshold = 4096;

void encode_u64(std::vector<unsigned char>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<unsigned char>(v >> (8 * i)));
  }
}

std::uint64_t decode_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

bool write_u32(KmlFile* f, std::uint32_t v) {
  return kml_fwrite(f, &v, sizeof(v)) == sizeof(v);
}

}  // namespace

TraceWriter::TraceWriter(StorageStack& stack, const char* path)
    : stack_(stack), path_(path), tmp_path_(std::string(path) + ".records") {
  tmp_ = kml_fopen(tmp_path_.c_str(), "w");
  if (tmp_ == nullptr) {
    KML_ERROR("TraceWriter: cannot open %s", tmp_path_.c_str());
    return;
  }
  ok_ = true;
  hook_handle_ = stack_.tracepoints().register_hook(
      [this](const TraceEvent& ev) { on_event(ev); },
      kKmlCollectionTracepoints);
}

TraceWriter::~TraceWriter() { finish(); }

void TraceWriter::on_event(const TraceEvent& event) {
  buffer_.push_back(event);
  ++captured_;
  if (buffer_.size() >= kFlushThreshold) flush_records();
}

void TraceWriter::flush_records() {
  if (!ok_ || buffer_.empty()) return;
  encoded_.clear();
  encoded_.reserve(buffer_.size() * kRecordBytes);
  for (const TraceEvent& ev : buffer_) {
    encoded_.push_back(static_cast<unsigned char>(ev.type));
    encode_u64(encoded_, ev.inode);
    encode_u64(encoded_, ev.pgoff);
    encode_u64(encoded_, ev.time_ns);
  }
  const auto bytes = static_cast<std::int64_t>(encoded_.size());
  if (kml_fwrite(tmp_, encoded_.data(), encoded_.size()) != bytes) {
    KML_ERROR("TraceWriter: short write to %s", tmp_path_.c_str());
    ok_ = false;
  }
  buffer_.clear();
}

bool TraceWriter::finish() {
  if (finished_) return ok_;
  finished_ = true;
  if (hook_handle_ >= 0) {
    stack_.tracepoints().unregister(hook_handle_);
    hook_handle_ = -1;
  }
  flush_records();
  if (tmp_ != nullptr) {
    kml_fclose(tmp_);
    tmp_ = nullptr;
  }
  if (!ok_) return false;

  // Assemble final file: header (with the file table as it stands now) +
  // the streamed records.
  KmlFile* out = kml_fopen(path_.c_str(), "w");
  if (out == nullptr) {
    ok_ = false;
    return false;
  }
  bool good = write_u32(out, kTraceMagic) && write_u32(out, kTraceVersion);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> table;
  stack_.files().for_each([&table](FileHandle& f) {
    table.emplace_back(f.inode, f.size_pages);
  });
  good = good && write_u32(out, static_cast<std::uint32_t>(table.size()));
  for (const auto& [inode, pages] : table) {
    good = good && kml_fwrite(out, &inode, sizeof(inode)) == sizeof(inode);
    good = good && kml_fwrite(out, &pages, sizeof(pages)) == sizeof(pages);
  }
  // Append the records stream.
  const std::int64_t rec_size = kml_fsize(tmp_path_.c_str());
  if (rec_size > 0) {
    KmlFile* in = kml_fopen(tmp_path_.c_str(), "r");
    good = good && in != nullptr;
    if (in != nullptr) {
      std::vector<unsigned char> chunk(1 << 20);
      std::int64_t n;
      while (good && (n = kml_fread(in, chunk.data(), chunk.size())) > 0) {
        good = kml_fwrite(out, chunk.data(),
                          static_cast<std::size_t>(n)) == n;
      }
      kml_fclose(in);
    }
  }
  kml_fclose(out);
  std::remove(tmp_path_.c_str());
  ok_ = good;
  return ok_;
}

bool TraceReader::open(const char* path) {
  const std::int64_t size = kml_fsize(path);
  if (size < 12) return false;
  KmlFile* f = kml_fopen(path, "r");
  if (f == nullptr) return false;
  std::vector<unsigned char> raw(static_cast<std::size_t>(size));
  const bool read_ok = kml_fread(f, raw.data(), raw.size()) == size;
  kml_fclose(f);
  if (!read_ok) return false;

  std::size_t pos = 0;
  auto read_u32 = [&](std::uint32_t& v) {
    if (pos + 4 > raw.size()) return false;
    std::memcpy(&v, raw.data() + pos, 4);
    pos += 4;
    return true;
  };
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t nfiles = 0;
  if (!read_u32(magic) || !read_u32(version) || !read_u32(nfiles)) {
    return false;
  }
  if (magic != kTraceMagic || version != kTraceVersion) return false;
  if (pos + static_cast<std::size_t>(nfiles) * 16 > raw.size()) return false;

  std::vector<std::pair<std::uint64_t, std::uint64_t>> table;
  for (std::uint32_t i = 0; i < nfiles; ++i) {
    const std::uint64_t inode = decode_u64(raw.data() + pos);
    const std::uint64_t pages = decode_u64(raw.data() + pos + 8);
    pos += 16;
    table.emplace_back(inode, pages);
  }

  std::vector<TraceEvent> records;
  if ((raw.size() - pos) % kRecordBytes != 0) return false;
  while (pos + kRecordBytes <= raw.size()) {
    TraceEvent ev;
    const unsigned char type = raw[pos];
    if (type > 1) return false;
    ev.type = static_cast<TraceEventType>(type);
    ev.inode = decode_u64(raw.data() + pos + 1);
    ev.pgoff = decode_u64(raw.data() + pos + 9);
    ev.time_ns = decode_u64(raw.data() + pos + 17);
    pos += kRecordBytes;
    records.push_back(ev);
  }

  files_ = std::move(table);
  records_ = std::move(records);
  cursor_ = 0;
  return true;
}

bool TraceReader::next(TraceEvent& out) {
  if (cursor_ >= records_.size()) return false;
  out = records_[cursor_++];
  return true;
}

ReplayStats replay_trace(StorageStack& stack, TraceReader& reader) {
  ReplayStats stats;
  const std::uint64_t start = stack.clock().now_ns();

  // Recreate the capture's files on the target stack.
  std::unordered_map<std::uint64_t, std::uint64_t> inode_map;
  for (const auto& [inode, pages] : reader.files()) {
    inode_map[inode] = stack.files().create(pages).inode;
  }

  TraceEvent ev;
  while (reader.next(ev)) {
    const auto mapped = inode_map.find(ev.inode);
    if (mapped == inode_map.end()) continue;  // file unknown to the capture
    FileHandle& file = stack.files().get(mapped->second);
    if (ev.type == TraceEventType::kAddToPageCache) {
      stack.cache().read(file, ev.pgoff, 1);
      ++stats.reads_issued;
    } else {
      stack.cache().write(file, ev.pgoff, 1);
      ++stats.writes_issued;
    }
  }
  stats.duration_ns = stack.clock().now_ns() - start;
  return stats;
}

}  // namespace kml::sim
