#include "sim/file.h"

#include <cassert>

namespace kml::sim {

FileHandle& FileTable::create(std::uint64_t size_pages) {
  const std::uint64_t inode = next_inode_++;
  FileHandle handle;
  handle.inode = inode;
  handle.size_pages = size_pages;
  handle.ra_pages = default_ra_pages_;
  auto [it, inserted] = files_.emplace(inode, handle);
  assert(inserted);
  return it->second;
}

void FileTable::remove(std::uint64_t inode) { files_.erase(inode); }

FileHandle& FileTable::get(std::uint64_t inode) {
  auto it = files_.find(inode);
  assert(it != files_.end());
  return it->second;
}

const FileHandle& FileTable::get(std::uint64_t inode) const {
  auto it = files_.find(inode);
  assert(it != files_.end());
  return it->second;
}

bool FileTable::exists(std::uint64_t inode) const {
  return files_.find(inode) != files_.end();
}

}  // namespace kml::sim
