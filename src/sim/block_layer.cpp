#include "sim/block_layer.h"

namespace kml::sim {

void BlockLayer::set_readahead_kb(std::uint32_t kb) {
  const std::uint32_t pages = FileTable::kb_to_pages(kb);
  files_->set_default_ra_pages(pages);
  files_->for_each([pages](FileHandle& f) { f.ra_pages = pages; });
  ++actuations_;
}

std::uint32_t BlockLayer::readahead_kb() const {
  return FileTable::pages_to_kb(files_->default_ra_pages());
}

void BlockLayer::set_file_readahead_kb(std::uint64_t inode,
                                       std::uint32_t kb) {
  files_->get(inode).ra_pages = FileTable::kb_to_pages(kb);
  ++actuations_;
}

std::uint32_t BlockLayer::file_readahead_kb(std::uint64_t inode) const {
  return FileTable::pages_to_kb(files_->get(inode).ra_pages);
}

void BlockLayer::fadvise(std::uint64_t inode, Fadvise advice) {
  FileHandle& file = files_->get(inode);
  switch (advice) {
    case Fadvise::kNormal:
      file.ra_pages = files_->default_ra_pages();
      break;
    case Fadvise::kSequential:
      file.ra_pages = files_->default_ra_pages() * 2;
      break;
    case Fadvise::kRandom:
      file.ra_pages = 0;
      break;
  }
  ++actuations_;
}

}  // namespace kml::sim
