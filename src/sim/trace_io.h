// trace_io.h — tracepoint capture to file and access replay.
//
// The paper's methodology leans on high-fidelity tracing (LTTng tracepoints
// captured to disk, later replayed/analyzed — cf. the authors' Re-Animator
// work). This module is that capability for the simulated stack:
//
//   TraceWriter  — subscribes to the tracepoint registry and streams every
//                  event to a compact binary file ('KMLR'), with the file
//                  table snapshot in the header so a replay can recreate
//                  the files;
//   TraceReader  — iterates a capture;
//   replay_trace — re-issues the captured accesses (reads for
//                  add_to_page_cache, writes for writeback_dirty_page)
//                  against a fresh stack, enabling offline what-if runs —
//                  e.g., re-running yesterday's I/O under a different
//                  readahead setting without the original application.
//
// File layout (little-endian):
//   u32 magic 'KMLR'  u32 version  u32 num_files  [u64 inode, u64 pages]...
//   records: u8 type, u64 inode, u64 pgoff, u64 time_ns   (packed, 25 B)
#pragma once

#include "portability/file.h"
#include "sim/stack.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace kml::sim {

inline constexpr std::uint32_t kTraceMagic = 0x524c4d4b;  // "KMLR"
inline constexpr std::uint32_t kTraceVersion = 1;

class TraceWriter {
 public:
  // Starts capturing immediately. The header's file table is written at
  // close time (files may be created mid-capture), so the capture is only
  // valid after the writer is destroyed or finish() returns true.
  TraceWriter(StorageStack& stack, const char* path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  // Flush buffers and finalize the capture; idempotent.
  bool finish();

  bool ok() const { return ok_; }
  std::uint64_t captured() const { return captured_; }

 private:
  void on_event(const TraceEvent& event);
  void flush_records();

  StorageStack& stack_;
  std::string path_;
  std::vector<TraceEvent> buffer_;
  std::vector<unsigned char> encoded_;
  KmlFile* tmp_ = nullptr;  // records stream (header prepended at finish)
  std::string tmp_path_;
  int hook_handle_ = -1;
  std::uint64_t captured_ = 0;
  bool ok_ = false;
  bool finished_ = false;
};

class TraceReader {
 public:
  // Opens and validates a capture; records() is then iterable.
  bool open(const char* path);

  // File-table snapshot from the header: inode -> size in pages.
  const std::vector<std::pair<std::uint64_t, std::uint64_t>>& files() const {
    return files_;
  }

  // Sequential record access; returns false at end of capture.
  bool next(TraceEvent& out);

  std::uint64_t remaining() const {
    return static_cast<std::uint64_t>(records_.size() - cursor_);
  }
  void rewind() { cursor_ = 0; }

 private:
  std::vector<std::pair<std::uint64_t, std::uint64_t>> files_;
  std::vector<TraceEvent> records_;
  std::size_t cursor_ = 0;
};

struct ReplayStats {
  std::uint64_t reads_issued = 0;
  std::uint64_t writes_issued = 0;
  std::uint64_t duration_ns = 0;  // virtual time the replay consumed
};

// Re-issue the captured accesses against `stack`. Files from the capture
// header are created on the target stack; the returned map translates
// captured inodes to replayed ones. Timing is not enforced (back-to-back
// replay, like Re-Animator's as-fast-as-possible mode).
ReplayStats replay_trace(StorageStack& stack, TraceReader& reader);

}  // namespace kml::sim
