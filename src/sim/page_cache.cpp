#include "sim/page_cache.h"

#include "observe/metrics.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace kml::sim {

PageCache::PageCache(std::uint64_t capacity_pages, SimClock& clock,
                     Device& device, TracepointRegistry& tracepoints)
    : capacity_(capacity_pages == 0 ? 1 : capacity_pages),
      clock_(clock),
      device_(device),
      tracepoints_(tracepoints) {}

void PageCache::read(FileHandle& file, std::uint64_t pgoff,
                     std::uint64_t count) {
  for (std::uint64_t p = pgoff; p < pgoff + count; ++p) {
    if (p >= file.size_pages) break;
    const PageKey key{file.inode, p};
    auto it = pages_.find(key);
    if (it != pages_.end()) {
      ++stats_.hits;
      KML_COUNTER_INC(observe::kMetricCacheHit);
      Page& page = *it->second;
      if (page.speculative) {
        page.speculative = false;
        ++stats_.prefetch_used;
      }
      const bool was_marker = page.ra_marker;
      page.ra_marker = false;
      touch(it->second);
      if (was_marker) {
        ra_engine_.on_marker_hit(*this, file, p);
      } else {
        file.ra.prev_pos = p;
      }
      continue;
    }
    ++stats_.misses;
    KML_COUNTER_INC(observe::kMetricCacheMiss);
    ra_engine_.on_sync_miss(*this, file, p);
    // Under extreme cache pressure the fresh page can already be evicted;
    // the reader still consumed it (it was copied to userspace), so no
    // retry loop is needed.
  }
}

void PageCache::write(FileHandle& file, std::uint64_t pgoff,
                      std::uint64_t count) {
  for (std::uint64_t p = pgoff; p < pgoff + count; ++p) {
    const PageKey key{file.inode, p};
    auto it = pages_.find(key);
    if (it == pages_.end()) {
      insert(key, /*speculative=*/false, /*dirty=*/true);
    } else {
      if (!it->second->dirty) ++dirty_count_;
      it->second->dirty = true;
      it->second->speculative = false;
      touch(it->second);
    }
    tracepoints_.emit(TraceEventType::kWritebackDirtyPage, file.inode, p,
                      clock_.now_ns());
  }
}

std::uint64_t PageCache::sync_all() {
  std::vector<std::uint64_t> inodes;
  for (const Page& page : lru_) {
    if (page.dirty) inodes.push_back(page.key.inode);
  }
  std::sort(inodes.begin(), inodes.end());
  inodes.erase(std::unique(inodes.begin(), inodes.end()), inodes.end());
  std::uint64_t total = 0;
  for (std::uint64_t inode : inodes) total += sync_file(inode);
  return total;
}

std::uint64_t PageCache::sync_file(std::uint64_t inode) {
  // Gather this file's dirty offsets, then issue maximal contiguous runs.
  std::vector<std::uint64_t> dirty;
  for (Page& page : lru_) {
    if (page.key.inode == inode && page.dirty) {
      dirty.push_back(page.key.pgoff);
      page.dirty = false;
      --dirty_count_;
    }
  }
  if (dirty.empty()) return 0;
  std::sort(dirty.begin(), dirty.end());

  std::uint64_t run_start = dirty.front();
  std::uint64_t prev = dirty.front();
  for (std::size_t i = 1; i <= dirty.size(); ++i) {
    const bool end = i == dirty.size();
    if (!end && dirty[i] == prev + 1) {
      prev = dirty[i];
      continue;
    }
    device_.write(inode, run_start, prev - run_start + 1);
    if (!end) {
      run_start = dirty[i];
      prev = dirty[i];
    }
  }
  stats_.synced_pages += dirty.size();
  return dirty.size();
}

void PageCache::drop_all() {
  lru_.clear();
  pages_.clear();
  dirty_count_ = 0;  // benchmark reset: dirty data is discarded, not synced
}

bool PageCache::cached(std::uint64_t inode, std::uint64_t pgoff) const {
  return pages_.find(PageKey{inode, pgoff}) != pages_.end();
}

void PageCache::do_readahead(FileHandle& file, std::uint64_t start,
                             std::uint64_t count, std::uint64_t marker_pgoff,
                             std::uint64_t faulting) {
  if (start >= file.size_pages) return;
  if (start + count > file.size_pages) count = file.size_pages - start;

  // Split [start, start+count) into maximal runs of uncached pages; each
  // run is one device command (cached gaps are skipped, as the kernel's
  // __do_page_cache_readahead does).
  std::uint64_t run_start = PageCache::kNoMarker;
  for (std::uint64_t p = start; p <= start + count; ++p) {
    const bool in_range = p < start + count;
    const bool is_cached = in_range && cached(file.inode, p);
    if (in_range && !is_cached) {
      if (run_start == PageCache::kNoMarker) run_start = p;
      continue;
    }
    if (run_start != PageCache::kNoMarker) {
      const std::uint64_t run_len = p - run_start;
      device_.read(file.inode, run_start, run_len);
      for (std::uint64_t q = run_start; q < p; ++q) {
        insert(PageKey{file.inode, q}, /*speculative=*/q != faulting,
               /*dirty=*/false);
      }
      run_start = PageCache::kNoMarker;
    }
  }

  if (marker_pgoff != kNoMarker) {
    auto it = pages_.find(PageKey{file.inode, marker_pgoff});
    if (it != pages_.end()) it->second->ra_marker = true;
  }
}

void PageCache::touch(LruList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void PageCache::insert(const PageKey& key, bool speculative, bool dirty) {
  assert(pages_.find(key) == pages_.end());
  while (pages_.size() >= capacity_) evict_one();
  lru_.push_front(Page{key, /*ra_marker=*/false, speculative, dirty});
  pages_.emplace(key, lru_.begin());
  if (dirty) ++dirty_count_;
  ++stats_.inserted;
  tracepoints_.emit(TraceEventType::kAddToPageCache, key.inode, key.pgoff,
                    clock_.now_ns());
}

void PageCache::evict_one() {
  assert(!lru_.empty());
  const Page& victim = lru_.back();
  if (victim.speculative) ++stats_.prefetch_wasted;
  if (victim.dirty) {
    // Reclaim writeback: the worst-case path — a synchronous single-page
    // write stalls the allocation that needed this frame.
    device_.write(victim.key.inode, victim.key.pgoff, 1);
    --dirty_count_;
    ++stats_.dirty_evictions;
  }
  ++stats_.evicted;
  pages_.erase(victim.key);
  lru_.pop_back();
}

}  // namespace kml::sim
