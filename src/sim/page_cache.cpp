#include "sim/page_cache.h"

#include "observe/flight_recorder.h"
#include "observe/metrics.h"

#include <algorithm>
#include <cassert>

namespace kml::sim {

PageCache::PageCache(std::uint64_t capacity_pages, SimClock& clock,
                     Device& device, TracepointRegistry& tracepoints,
                     EvictionPolicyType policy, const EvictionParams& params)
    : capacity_(capacity_pages == 0 ? 1 : capacity_pages),
      clock_(clock),
      device_(device),
      tracepoints_(tracepoints),
      policy_type_(policy),
      policy_params_(params),
      policy_(make_eviction_policy(policy, params)) {}

void PageCache::read(FileHandle& file, std::uint64_t pgoff,
                     std::uint64_t count) {
  for (std::uint64_t p = pgoff; p < pgoff + count; ++p) {
    if (p >= file.size_pages) break;
    const PageKey key{file.inode, p};
    auto it = pages_.find(key);
    if (it != pages_.end()) {
      ++stats_.hits;
      KML_COUNTER_INC(observe::kMetricCacheHit);
      tracepoints_.emit(TraceEventType::kPageCacheHit, file.inode, p,
                        clock_.now_ns());
      const std::uint32_t slot = it->second;
      Page& page = slots_[slot];
      if (page.speculative) {
        page.speculative = false;
        ++stats_.prefetch_used;
      }
      const bool was_marker = page.ra_marker;
      page.ra_marker = false;
      policy_->on_access(slot);
      if (was_marker) {
        ra_engine_.on_marker_hit(*this, file, p);
      } else {
        file.ra.prev_pos = p;
      }
      continue;
    }
    ++stats_.misses;
    KML_COUNTER_INC(observe::kMetricCacheMiss);
    tracepoints_.emit(TraceEventType::kPageCacheMiss, file.inode, p,
                      clock_.now_ns());
    ra_engine_.on_sync_miss(*this, file, p);
    // Under extreme cache pressure the fresh page can already be evicted;
    // the reader still consumed it (it was copied to userspace), so no
    // retry loop is needed.
  }
}

void PageCache::write(FileHandle& file, std::uint64_t pgoff,
                      std::uint64_t count) {
  for (std::uint64_t p = pgoff; p < pgoff + count; ++p) {
    // Same EOF clamp as read(): files are fixed-size and a page beyond EOF
    // has no backing block — before this check, writes past EOF inserted
    // phantom dirty pages that sync_file() then "wrote back" to the device.
    if (p >= file.size_pages) break;
    const PageKey key{file.inode, p};
    auto it = pages_.find(key);
    if (it == pages_.end()) {
      insert(key, /*speculative=*/false, /*dirty=*/true);
    } else {
      Page& page = slots_[it->second];
      if (!page.dirty) ++dirty_count_;
      page.dirty = true;
      page.speculative = false;
      policy_->on_access(it->second);
    }
    tracepoints_.emit(TraceEventType::kWritebackDirtyPage, file.inode, p,
                      clock_.now_ns());
  }
}

std::uint64_t PageCache::sync_all() {
  std::vector<std::uint64_t> inodes;
  for (const Page& page : slots_) {
    if (page.in_use && page.dirty) inodes.push_back(page.key.inode);
  }
  std::sort(inodes.begin(), inodes.end());
  inodes.erase(std::unique(inodes.begin(), inodes.end()), inodes.end());
  std::uint64_t total = 0;
  for (std::uint64_t inode : inodes) total += sync_file(inode);
  return total;
}

std::uint64_t PageCache::sync_file(std::uint64_t inode) {
  // Gather this file's dirty offsets, then issue maximal contiguous runs.
  std::vector<std::uint64_t> dirty;
  for (Page& page : slots_) {
    if (page.in_use && page.key.inode == inode && page.dirty) {
      dirty.push_back(page.key.pgoff);
      page.dirty = false;
      --dirty_count_;
    }
  }
  if (dirty.empty()) return 0;
  std::sort(dirty.begin(), dirty.end());

  std::uint64_t run_start = dirty.front();
  std::uint64_t prev = dirty.front();
  for (std::size_t i = 1; i <= dirty.size(); ++i) {
    const bool end = i == dirty.size();
    if (!end && dirty[i] == prev + 1) {
      prev = dirty[i];
      continue;
    }
    device_.write(inode, run_start, prev - run_start + 1);
    if (!end) {
      run_start = dirty[i];
      prev = dirty[i];
    }
  }
  stats_.synced_pages += dirty.size();
  return dirty.size();
}

void PageCache::drop_all() {
  // Speculative pages that were resident and never touched are prefetch
  // waste exactly as if reclaim had taken them — the device I/O was spent
  // either way. Before this accounting, a drop between benchmark phases
  // silently zeroed the waste a readahead policy had just caused.
  for (const Page& page : slots_) {
    if (page.in_use && page.speculative) ++stats_.prefetch_wasted;
  }
  slots_.clear();
  free_slots_.clear();
  pages_.clear();
  policy_->clear();
  dirty_count_ = 0;  // benchmark reset: dirty data is discarded, not synced
}

bool PageCache::cached(std::uint64_t inode, std::uint64_t pgoff) const {
  return pages_.find(PageKey{inode, pgoff}) != pages_.end();
}

bool PageCache::set_policy(EvictionPolicyType type,
                           const EvictionParams& params) {
  if (type == policy_type_ && params == policy_params_) return false;
  const EvictionPolicyType old_type = policy_type_;
  policy_ = make_eviction_policy(type, params);
  policy_type_ = type;
  policy_params_ = params;
  // Seed the new policy with the resident set in slot order. Slot indices
  // are recycled LIFO so this is only an approximation of insertion age —
  // which is fine: the policies converge on real ordering within one
  // working-set pass, and residency (the expensive part) carries over.
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
    if (slots_[slot].in_use) policy_->on_insert(slot);
  }
  ++stats_.policy_switches;
  observe::counter_add(observe::kMetricCachePolicySwitches);
  observe::gauge_set(observe::kMetricCachePolicyId,
                     static_cast<std::uint64_t>(type));
  KML_EVENT(observe::EventId::kCachePolicySwitch,
            static_cast<std::uint64_t>(type),
            static_cast<std::uint64_t>(old_type));
  return true;
}

void PageCache::do_readahead(FileHandle& file, std::uint64_t start,
                             std::uint64_t count, std::uint64_t marker_pgoff,
                             std::uint64_t faulting) {
  if (start >= file.size_pages) return;
  if (start + count > file.size_pages) count = file.size_pages - start;

  // Split [start, start+count) into maximal runs of uncached pages; each
  // run is one device command (cached gaps are skipped, as the kernel's
  // __do_page_cache_readahead does).
  bool marker_inserted = false;
  std::uint64_t run_start = PageCache::kNoMarker;
  for (std::uint64_t p = start; p <= start + count; ++p) {
    const bool in_range = p < start + count;
    const bool is_cached = in_range && cached(file.inode, p);
    if (in_range && !is_cached) {
      if (run_start == PageCache::kNoMarker) run_start = p;
      continue;
    }
    if (run_start != PageCache::kNoMarker) {
      const std::uint64_t run_len = p - run_start;
      device_.read(file.inode, run_start, run_len);
      for (std::uint64_t q = run_start; q < p; ++q) {
        insert(PageKey{file.inode, q}, /*speculative=*/q != faulting,
               /*dirty=*/false);
        if (q == marker_pgoff) marker_inserted = true;
      }
      run_start = PageCache::kNoMarker;
    }
  }

  // Arm the marker only on a page this call actually read. The previous
  // behaviour marked any resident page at marker_pgoff — hijacking a page
  // another stream (or an interleaved reader) already owned, double-arming
  // windows that issued no I/O. The residency re-check still matters: under
  // extreme pressure the page can be evicted within this very call.
  if (marker_inserted) {
    auto it = pages_.find(PageKey{file.inode, marker_pgoff});
    if (it != pages_.end()) slots_[it->second].ra_marker = true;
  }
}

void PageCache::insert(const PageKey& key, bool speculative, bool dirty) {
  assert(pages_.find(key) == pages_.end());
  while (pages_.size() >= capacity_) evict_one();
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Page& page = slots_[slot];
  page.key = key;
  page.in_use = true;
  page.ra_marker = false;
  page.speculative = speculative;
  page.dirty = dirty;
  pages_.emplace(key, slot);
  policy_->on_insert(slot);
  if (dirty) ++dirty_count_;
  ++stats_.inserted;
  tracepoints_.emit(TraceEventType::kAddToPageCache, key.inode, key.pgoff,
                    clock_.now_ns());
}

void PageCache::evict_one() {
  assert(!pages_.empty());
  const std::uint32_t slot = policy_->pick_victim();
  Page& victim = slots_[slot];
  if (victim.speculative) ++stats_.prefetch_wasted;
  if (victim.dirty) {
    // Reclaim writeback: the worst-case path — a synchronous single-page
    // write stalls the allocation that needed this frame.
    device_.write(victim.key.inode, victim.key.pgoff, 1);
    --dirty_count_;
    ++stats_.dirty_evictions;
  }
  ++stats_.evicted;
  pages_.erase(victim.key);
  victim.in_use = false;
  free_slots_.push_back(slot);
}

}  // namespace kml::sim
