// page_cache.h — simulated OS page cache with pluggable eviction.
//
// The surface both ML case studies observe and actuate:
//  * every page inserted fires the add_to_page_cache tracepoint (what KML's
//    data-collection hooks attach to); hits and misses fire their own
//    per-access tracepoints for the eviction study,
//  * every page dirtied fires writeback_dirty_page,
//  * misses are served through the ondemand readahead engine, whose maximum
//    window is the per-file ra_pages that KML tunes,
//  * reclaim order is delegated to an EvictionPolicy (LRU/CLOCK/GCLOCK) that
//    the eviction tuner switches per workload phase — the reclaim-side
//    analogue of the ra_pages knob.
//
// Storage is slot-based: pages live in a slab with stable uint32_t slot
// indices, so a policy tracks ordering with flat per-slot arrays instead of
// owning the pages. Reads are charged synchronously on the virtual clock
// (DESIGN.md §2): the modeled benefit of readahead is command batching, the
// first-order effect on SSDs.
#pragma once

#include "sim/device.h"
#include "sim/eviction_policy.h"
#include "sim/file.h"
#include "sim/readahead.h"
#include "sim/tracepoint.h"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace kml::sim {

struct PageCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserted = 0;
  std::uint64_t evicted = 0;
  // Pages brought in by readahead beyond the faulting page that were
  // evicted without ever being accessed — the waste KML eliminates.
  std::uint64_t prefetch_wasted = 0;
  std::uint64_t prefetch_used = 0;
  // Dirty-page lifecycle: pages written back by sync_file() vs. the
  // expensive path — a dirty victim forced out by eviction.
  std::uint64_t synced_pages = 0;
  std::uint64_t dirty_evictions = 0;
  // Eviction-policy changes applied through set_policy() (tuner actuations
  // that actually changed something; no-op re-application is not counted).
  std::uint64_t policy_switches = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class PageCache {
 public:
  PageCache(std::uint64_t capacity_pages, SimClock& clock, Device& device,
            TracepointRegistry& tracepoints,
            EvictionPolicyType policy = EvictionPolicyType::kLru,
            const EvictionParams& params = EvictionParams{});

  // Buffered read of `count` pages starting at `pgoff` — the
  // generic_file_read path: per page, hit -> policy touch (and async
  // readahead if it carries the marker), miss -> sync readahead.
  void read(FileHandle& file, std::uint64_t pgoff, std::uint64_t count);

  // Buffered write: dirties pages (insert if absent, no device read) and
  // fires writeback_dirty_page. No device cost yet — dirty data reaches the
  // device through sync_file() (batched, cheap) or, worst case, through
  // eviction of a dirty victim (single-page write, expensive), mirroring
  // delayed allocation + reclaim writeback. Clamped at EOF like read():
  // the simulated files are fixed-size, there is no append path.
  void write(FileHandle& file, std::uint64_t pgoff, std::uint64_t count);

  // fsync analogue: write back every dirty page of `inode` in maximal
  // contiguous device commands and mark them clean. Returns pages synced.
  std::uint64_t sync_file(std::uint64_t inode);

  // Flush every dirty page of every file (the flusher-thread sweep).
  // Returns pages synced.
  std::uint64_t sync_all();

  // Dirty pages currently resident (all files).
  std::uint64_t dirty_pages() const { return dirty_count_; }

  // Drop every cached page (echo 3 > /proc/sys/vm/drop_caches) — the paper
  // clears the cache between benchmark runs. Resident speculative pages
  // never accessed count as prefetch waste (they were read from the device
  // for nothing), but not as evictions — the drop is not reclaim pressure.
  void drop_all();

  bool cached(std::uint64_t inode, std::uint64_t pgoff) const;

  // Switch the reclaim policy (and its knobs) in place. Residency is
  // preserved; the new policy is seeded by registering the resident pages
  // in slot (≈ insertion-age) order, so a switch costs no hits, only the
  // fine-grained recency/frequency history. Returns true when anything
  // changed; re-applying the current policy+params is a free no-op so the
  // tuner can actuate every window without churn.
  bool set_policy(EvictionPolicyType type,
                  const EvictionParams& params = EvictionParams{});
  EvictionPolicyType policy_type() const { return policy_type_; }
  const EvictionParams& policy_params() const { return policy_params_; }

  std::uint64_t capacity_pages() const { return capacity_; }
  std::uint64_t resident_pages() const { return pages_.size(); }
  const PageCacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = PageCacheStats{}; }
  ReadaheadEngine& readahead() { return ra_engine_; }

  // Called by the readahead engine: read [start, start+count) of `file`
  // from the device, skipping already-cached pages (each contiguous
  // uncached run becomes one device command), insert the pages, and set
  // the readahead re-arm marker on page `marker_pgoff` — only if this call
  // inserted it (marking an already-resident page would re-arm a stream
  // that did not issue the I/O). Pass kNoMarker to skip. `faulting` is the
  // page the application actually demanded; other inserted pages are
  // accounted as speculative prefetch.
  static constexpr std::uint64_t kNoMarker = UINT64_MAX;
  void do_readahead(FileHandle& file, std::uint64_t start,
                    std::uint64_t count, std::uint64_t marker_pgoff,
                    std::uint64_t faulting);

 private:
  struct PageKey {
    std::uint64_t inode;
    std::uint64_t pgoff;
    bool operator==(const PageKey&) const = default;
  };
  struct PageKeyHash {
    std::size_t operator()(const PageKey& k) const {
      // splitmix-style combine
      std::uint64_t x = k.inode * 0x9e3779b97f4a7c15ULL ^ k.pgoff;
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      return static_cast<std::size_t>(x);
    }
  };
  struct Page {
    PageKey key;
    bool in_use = false;
    bool ra_marker = false;   // PG_readahead analogue
    bool speculative = false; // inserted by prefetch, not yet accessed
    bool dirty = false;
  };

  void insert(const PageKey& key, bool speculative, bool dirty);
  void evict_one();

  std::uint64_t capacity_;
  SimClock& clock_;
  Device& device_;
  TracepointRegistry& tracepoints_;
  ReadaheadEngine ra_engine_;
  // Slot slab: stable indices for resident pages; freed slots are recycled
  // LIFO. pages_ maps a key to its slot; the policy orders the slots.
  std::vector<Page> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<PageKey, std::uint32_t, PageKeyHash> pages_;
  EvictionPolicyType policy_type_;
  EvictionParams policy_params_;
  std::unique_ptr<EvictionPolicy> policy_;
  PageCacheStats stats_;
  std::uint64_t dirty_count_ = 0;
};

}  // namespace kml::sim
