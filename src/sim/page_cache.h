// page_cache.h — simulated OS page cache with LRU eviction.
//
// The surface the readahead case study observes and actuates:
//  * every page inserted fires the add_to_page_cache tracepoint (what KML's
//    data-collection hooks attach to),
//  * every page dirtied fires writeback_dirty_page,
//  * misses are served through the ondemand readahead engine, whose maximum
//    window is the per-file ra_pages that KML tunes.
//
// Reads are charged synchronously on the virtual clock (DESIGN.md §2): the
// modeled benefit of readahead is command batching, the first-order effect
// on SSDs.
#pragma once

#include "sim/device.h"
#include "sim/file.h"
#include "sim/readahead.h"
#include "sim/tracepoint.h"

#include <cstdint>
#include <list>
#include <unordered_map>

namespace kml::sim {

struct PageCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserted = 0;
  std::uint64_t evicted = 0;
  // Pages brought in by readahead beyond the faulting page that were
  // evicted without ever being accessed — the waste KML eliminates.
  std::uint64_t prefetch_wasted = 0;
  std::uint64_t prefetch_used = 0;
  // Dirty-page lifecycle: pages written back by sync_file() vs. the
  // expensive path — a dirty victim forced out by eviction.
  std::uint64_t synced_pages = 0;
  std::uint64_t dirty_evictions = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class PageCache {
 public:
  PageCache(std::uint64_t capacity_pages, SimClock& clock, Device& device,
            TracepointRegistry& tracepoints);

  // Buffered read of `count` pages starting at `pgoff` — the
  // generic_file_read path: per page, hit -> LRU touch (and async
  // readahead if it carries the marker), miss -> sync readahead.
  void read(FileHandle& file, std::uint64_t pgoff, std::uint64_t count);

  // Buffered write: dirties pages (insert if absent, no device read) and
  // fires writeback_dirty_page. No device cost yet — dirty data reaches the
  // device through sync_file() (batched, cheap) or, worst case, through
  // eviction of a dirty victim (single-page write, expensive), mirroring
  // delayed allocation + reclaim writeback.
  void write(FileHandle& file, std::uint64_t pgoff, std::uint64_t count);

  // fsync analogue: write back every dirty page of `inode` in maximal
  // contiguous device commands and mark them clean. Returns pages synced.
  std::uint64_t sync_file(std::uint64_t inode);

  // Flush every dirty page of every file (the flusher-thread sweep).
  // Returns pages synced.
  std::uint64_t sync_all();

  // Dirty pages currently resident (all files).
  std::uint64_t dirty_pages() const { return dirty_count_; }

  // Drop every cached page (echo 3 > /proc/sys/vm/drop_caches) — the paper
  // clears the cache between benchmark runs.
  void drop_all();

  bool cached(std::uint64_t inode, std::uint64_t pgoff) const;

  std::uint64_t capacity_pages() const { return capacity_; }
  std::uint64_t resident_pages() const { return pages_.size(); }
  const PageCacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = PageCacheStats{}; }
  ReadaheadEngine& readahead() { return ra_engine_; }

  // Called by the readahead engine: read [start, start+count) of `file`
  // from the device, skipping already-cached pages (each contiguous
  // uncached run becomes one device command), insert the pages, and set
  // the readahead re-arm marker on page `marker_pgoff` (pass kNoMarker to
  // skip). `faulting` is the page the application actually demanded; other
  // inserted pages are accounted as speculative prefetch.
  static constexpr std::uint64_t kNoMarker = UINT64_MAX;
  void do_readahead(FileHandle& file, std::uint64_t start,
                    std::uint64_t count, std::uint64_t marker_pgoff,
                    std::uint64_t faulting);

 private:
  struct PageKey {
    std::uint64_t inode;
    std::uint64_t pgoff;
    bool operator==(const PageKey&) const = default;
  };
  struct PageKeyHash {
    std::size_t operator()(const PageKey& k) const {
      // splitmix-style combine
      std::uint64_t x = k.inode * 0x9e3779b97f4a7c15ULL ^ k.pgoff;
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      return static_cast<std::size_t>(x);
    }
  };
  struct Page {
    PageKey key;
    bool ra_marker = false;   // PG_readahead analogue
    bool speculative = false; // inserted by prefetch, not yet accessed
    bool dirty = false;
  };
  using LruList = std::list<Page>;

  void touch(LruList::iterator it);
  void insert(const PageKey& key, bool speculative, bool dirty);
  void evict_one();

  std::uint64_t capacity_;
  SimClock& clock_;
  Device& device_;
  TracepointRegistry& tracepoints_;
  ReadaheadEngine ra_engine_;
  LruList lru_;  // front = most recently used
  std::unordered_map<PageKey, LruList::iterator, PageKeyHash> pages_;
  PageCacheStats stats_;
  std::uint64_t dirty_count_ = 0;
};

}  // namespace kml::sim
