# Empty dependencies file for bench_per_file.
# This may be replaced when dependencies are built.
