file(REMOVE_RECURSE
  "CMakeFiles/bench_per_file.dir/bench_per_file.cpp.o"
  "CMakeFiles/bench_per_file.dir/bench_per_file.cpp.o.d"
  "bench_per_file"
  "bench_per_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_per_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
