# Empty dependencies file for tool_mixed_probe.
# This may be replaced when dependencies are built.
