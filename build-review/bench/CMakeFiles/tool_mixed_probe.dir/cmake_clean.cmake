file(REMOVE_RECURSE
  "CMakeFiles/tool_mixed_probe.dir/tool_mixed_probe.cpp.o"
  "CMakeFiles/tool_mixed_probe.dir/tool_mixed_probe.cpp.o.d"
  "tool_mixed_probe"
  "tool_mixed_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_mixed_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
