# Empty compiler generated dependencies file for tool_rl_probe.
# This may be replaced when dependencies are built.
