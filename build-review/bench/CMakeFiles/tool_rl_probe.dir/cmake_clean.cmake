file(REMOVE_RECURSE
  "CMakeFiles/tool_rl_probe.dir/tool_rl_probe.cpp.o"
  "CMakeFiles/tool_rl_probe.dir/tool_rl_probe.cpp.o.d"
  "tool_rl_probe"
  "tool_rl_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_rl_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
