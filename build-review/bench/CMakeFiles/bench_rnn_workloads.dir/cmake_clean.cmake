file(REMOVE_RECURSE
  "CMakeFiles/bench_rnn_workloads.dir/bench_rnn_workloads.cpp.o"
  "CMakeFiles/bench_rnn_workloads.dir/bench_rnn_workloads.cpp.o.d"
  "bench_rnn_workloads"
  "bench_rnn_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rnn_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
