# Empty dependencies file for bench_rnn_workloads.
# This may be replaced when dependencies are built.
