# Empty compiler generated dependencies file for bench_markov_baseline.
# This may be replaced when dependencies are built.
