file(REMOVE_RECURSE
  "CMakeFiles/bench_markov_baseline.dir/bench_markov_baseline.cpp.o"
  "CMakeFiles/bench_markov_baseline.dir/bench_markov_baseline.cpp.o.d"
  "bench_markov_baseline"
  "bench_markov_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_markov_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
