
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_markov_baseline.cpp" "bench/CMakeFiles/bench_markov_baseline.dir/bench_markov_baseline.cpp.o" "gcc" "bench/CMakeFiles/bench_markov_baseline.dir/bench_markov_baseline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/kml_baselines.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_capi.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_writeback.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_readahead.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_runtime.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_dtree.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_matrix.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_data.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_workloads.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_kv.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_math.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_portability.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
