# Empty dependencies file for bench_figure2_timeline.
# This may be replaced when dependencies are built.
