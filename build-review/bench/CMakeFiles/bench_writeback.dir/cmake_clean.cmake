file(REMOVE_RECURSE
  "CMakeFiles/bench_writeback.dir/bench_writeback.cpp.o"
  "CMakeFiles/bench_writeback.dir/bench_writeback.cpp.o.d"
  "bench_writeback"
  "bench_writeback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_writeback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
