# Empty dependencies file for bench_writeback.
# This may be replaced when dependencies are built.
