# Empty compiler generated dependencies file for bench_model_accuracy.
# This may be replaced when dependencies are built.
