# Empty dependencies file for bench_rl_tuner.
# This may be replaced when dependencies are built.
