file(REMOVE_RECURSE
  "CMakeFiles/bench_rl_tuner.dir/bench_rl_tuner.cpp.o"
  "CMakeFiles/bench_rl_tuner.dir/bench_rl_tuner.cpp.o.d"
  "bench_rl_tuner"
  "bench_rl_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rl_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
