# Empty dependencies file for bench_decision_tree.
# This may be replaced when dependencies are built.
