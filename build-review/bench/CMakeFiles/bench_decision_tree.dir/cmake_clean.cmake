file(REMOVE_RECURSE
  "CMakeFiles/bench_decision_tree.dir/bench_decision_tree.cpp.o"
  "CMakeFiles/bench_decision_tree.dir/bench_decision_tree.cpp.o.d"
  "bench_decision_tree"
  "bench_decision_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decision_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
