# Empty dependencies file for bench_readahead_sweep.
# This may be replaced when dependencies are built.
