file(REMOVE_RECURSE
  "CMakeFiles/bench_readahead_sweep.dir/bench_readahead_sweep.cpp.o"
  "CMakeFiles/bench_readahead_sweep.dir/bench_readahead_sweep.cpp.o.d"
  "bench_readahead_sweep"
  "bench_readahead_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_readahead_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
