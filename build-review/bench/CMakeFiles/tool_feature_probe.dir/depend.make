# Empty dependencies file for tool_feature_probe.
# This may be replaced when dependencies are built.
