file(REMOVE_RECURSE
  "CMakeFiles/tool_feature_probe.dir/tool_feature_probe.cpp.o"
  "CMakeFiles/tool_feature_probe.dir/tool_feature_probe.cpp.o.d"
  "tool_feature_probe"
  "tool_feature_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_feature_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
