file(REMOVE_RECURSE
  "CMakeFiles/bench_health_guard.dir/bench_health_guard.cpp.o"
  "CMakeFiles/bench_health_guard.dir/bench_health_guard.cpp.o.d"
  "bench_health_guard"
  "bench_health_guard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_health_guard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
