# Empty compiler generated dependencies file for bench_health_guard.
# This may be replaced when dependencies are built.
