
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/portability/fault.cpp" "src/CMakeFiles/kml_portability.dir/portability/fault.cpp.o" "gcc" "src/CMakeFiles/kml_portability.dir/portability/fault.cpp.o.d"
  "/root/repo/src/portability/file.cpp" "src/CMakeFiles/kml_portability.dir/portability/file.cpp.o" "gcc" "src/CMakeFiles/kml_portability.dir/portability/file.cpp.o.d"
  "/root/repo/src/portability/kml_lib.cpp" "src/CMakeFiles/kml_portability.dir/portability/kml_lib.cpp.o" "gcc" "src/CMakeFiles/kml_portability.dir/portability/kml_lib.cpp.o.d"
  "/root/repo/src/portability/log.cpp" "src/CMakeFiles/kml_portability.dir/portability/log.cpp.o" "gcc" "src/CMakeFiles/kml_portability.dir/portability/log.cpp.o.d"
  "/root/repo/src/portability/memory.cpp" "src/CMakeFiles/kml_portability.dir/portability/memory.cpp.o" "gcc" "src/CMakeFiles/kml_portability.dir/portability/memory.cpp.o.d"
  "/root/repo/src/portability/thread.cpp" "src/CMakeFiles/kml_portability.dir/portability/thread.cpp.o" "gcc" "src/CMakeFiles/kml_portability.dir/portability/thread.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
