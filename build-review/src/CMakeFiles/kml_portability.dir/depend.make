# Empty dependencies file for kml_portability.
# This may be replaced when dependencies are built.
