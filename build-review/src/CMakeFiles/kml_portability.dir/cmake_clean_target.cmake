file(REMOVE_RECURSE
  "libkml_portability.a"
)
