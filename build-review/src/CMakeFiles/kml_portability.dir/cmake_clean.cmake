file(REMOVE_RECURSE
  "CMakeFiles/kml_portability.dir/portability/fault.cpp.o"
  "CMakeFiles/kml_portability.dir/portability/fault.cpp.o.d"
  "CMakeFiles/kml_portability.dir/portability/file.cpp.o"
  "CMakeFiles/kml_portability.dir/portability/file.cpp.o.d"
  "CMakeFiles/kml_portability.dir/portability/kml_lib.cpp.o"
  "CMakeFiles/kml_portability.dir/portability/kml_lib.cpp.o.d"
  "CMakeFiles/kml_portability.dir/portability/log.cpp.o"
  "CMakeFiles/kml_portability.dir/portability/log.cpp.o.d"
  "CMakeFiles/kml_portability.dir/portability/memory.cpp.o"
  "CMakeFiles/kml_portability.dir/portability/memory.cpp.o.d"
  "CMakeFiles/kml_portability.dir/portability/thread.cpp.o"
  "CMakeFiles/kml_portability.dir/portability/thread.cpp.o.d"
  "libkml_portability.a"
  "libkml_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kml_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
