# Empty dependencies file for kml_writeback.
# This may be replaced when dependencies are built.
