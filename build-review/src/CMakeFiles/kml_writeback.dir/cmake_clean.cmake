file(REMOVE_RECURSE
  "CMakeFiles/kml_writeback.dir/writeback/workload.cpp.o"
  "CMakeFiles/kml_writeback.dir/writeback/workload.cpp.o.d"
  "libkml_writeback.a"
  "libkml_writeback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kml_writeback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
