file(REMOVE_RECURSE
  "libkml_writeback.a"
)
