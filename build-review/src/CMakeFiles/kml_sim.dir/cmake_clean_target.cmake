file(REMOVE_RECURSE
  "libkml_sim.a"
)
