file(REMOVE_RECURSE
  "CMakeFiles/kml_sim.dir/sim/block_layer.cpp.o"
  "CMakeFiles/kml_sim.dir/sim/block_layer.cpp.o.d"
  "CMakeFiles/kml_sim.dir/sim/clock.cpp.o"
  "CMakeFiles/kml_sim.dir/sim/clock.cpp.o.d"
  "CMakeFiles/kml_sim.dir/sim/device.cpp.o"
  "CMakeFiles/kml_sim.dir/sim/device.cpp.o.d"
  "CMakeFiles/kml_sim.dir/sim/file.cpp.o"
  "CMakeFiles/kml_sim.dir/sim/file.cpp.o.d"
  "CMakeFiles/kml_sim.dir/sim/page_cache.cpp.o"
  "CMakeFiles/kml_sim.dir/sim/page_cache.cpp.o.d"
  "CMakeFiles/kml_sim.dir/sim/readahead.cpp.o"
  "CMakeFiles/kml_sim.dir/sim/readahead.cpp.o.d"
  "CMakeFiles/kml_sim.dir/sim/trace_io.cpp.o"
  "CMakeFiles/kml_sim.dir/sim/trace_io.cpp.o.d"
  "CMakeFiles/kml_sim.dir/sim/tracepoint.cpp.o"
  "CMakeFiles/kml_sim.dir/sim/tracepoint.cpp.o.d"
  "libkml_sim.a"
  "libkml_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kml_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
