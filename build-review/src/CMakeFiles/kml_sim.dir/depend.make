# Empty dependencies file for kml_sim.
# This may be replaced when dependencies are built.
