
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/block_layer.cpp" "src/CMakeFiles/kml_sim.dir/sim/block_layer.cpp.o" "gcc" "src/CMakeFiles/kml_sim.dir/sim/block_layer.cpp.o.d"
  "/root/repo/src/sim/clock.cpp" "src/CMakeFiles/kml_sim.dir/sim/clock.cpp.o" "gcc" "src/CMakeFiles/kml_sim.dir/sim/clock.cpp.o.d"
  "/root/repo/src/sim/device.cpp" "src/CMakeFiles/kml_sim.dir/sim/device.cpp.o" "gcc" "src/CMakeFiles/kml_sim.dir/sim/device.cpp.o.d"
  "/root/repo/src/sim/file.cpp" "src/CMakeFiles/kml_sim.dir/sim/file.cpp.o" "gcc" "src/CMakeFiles/kml_sim.dir/sim/file.cpp.o.d"
  "/root/repo/src/sim/page_cache.cpp" "src/CMakeFiles/kml_sim.dir/sim/page_cache.cpp.o" "gcc" "src/CMakeFiles/kml_sim.dir/sim/page_cache.cpp.o.d"
  "/root/repo/src/sim/readahead.cpp" "src/CMakeFiles/kml_sim.dir/sim/readahead.cpp.o" "gcc" "src/CMakeFiles/kml_sim.dir/sim/readahead.cpp.o.d"
  "/root/repo/src/sim/trace_io.cpp" "src/CMakeFiles/kml_sim.dir/sim/trace_io.cpp.o" "gcc" "src/CMakeFiles/kml_sim.dir/sim/trace_io.cpp.o.d"
  "/root/repo/src/sim/tracepoint.cpp" "src/CMakeFiles/kml_sim.dir/sim/tracepoint.cpp.o" "gcc" "src/CMakeFiles/kml_sim.dir/sim/tracepoint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/kml_math.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_portability.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
