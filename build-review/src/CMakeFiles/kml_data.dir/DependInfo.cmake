
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/circular_buffer.cpp" "src/CMakeFiles/kml_data.dir/data/circular_buffer.cpp.o" "gcc" "src/CMakeFiles/kml_data.dir/data/circular_buffer.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/kml_data.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/kml_data.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/normalizer.cpp" "src/CMakeFiles/kml_data.dir/data/normalizer.cpp.o" "gcc" "src/CMakeFiles/kml_data.dir/data/normalizer.cpp.o.d"
  "/root/repo/src/data/windower.cpp" "src/CMakeFiles/kml_data.dir/data/windower.cpp.o" "gcc" "src/CMakeFiles/kml_data.dir/data/windower.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/kml_math.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_portability.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
