file(REMOVE_RECURSE
  "libkml_data.a"
)
