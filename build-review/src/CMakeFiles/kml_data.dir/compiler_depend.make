# Empty compiler generated dependencies file for kml_data.
# This may be replaced when dependencies are built.
