file(REMOVE_RECURSE
  "CMakeFiles/kml_data.dir/data/circular_buffer.cpp.o"
  "CMakeFiles/kml_data.dir/data/circular_buffer.cpp.o.d"
  "CMakeFiles/kml_data.dir/data/dataset.cpp.o"
  "CMakeFiles/kml_data.dir/data/dataset.cpp.o.d"
  "CMakeFiles/kml_data.dir/data/normalizer.cpp.o"
  "CMakeFiles/kml_data.dir/data/normalizer.cpp.o.d"
  "CMakeFiles/kml_data.dir/data/windower.cpp.o"
  "CMakeFiles/kml_data.dir/data/windower.cpp.o.d"
  "libkml_data.a"
  "libkml_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kml_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
