file(REMOVE_RECURSE
  "CMakeFiles/kml_readahead.dir/readahead/features.cpp.o"
  "CMakeFiles/kml_readahead.dir/readahead/features.cpp.o.d"
  "CMakeFiles/kml_readahead.dir/readahead/file_tuner.cpp.o"
  "CMakeFiles/kml_readahead.dir/readahead/file_tuner.cpp.o.d"
  "CMakeFiles/kml_readahead.dir/readahead/model.cpp.o"
  "CMakeFiles/kml_readahead.dir/readahead/model.cpp.o.d"
  "CMakeFiles/kml_readahead.dir/readahead/pipeline.cpp.o"
  "CMakeFiles/kml_readahead.dir/readahead/pipeline.cpp.o.d"
  "CMakeFiles/kml_readahead.dir/readahead/rl_tuner.cpp.o"
  "CMakeFiles/kml_readahead.dir/readahead/rl_tuner.cpp.o.d"
  "CMakeFiles/kml_readahead.dir/readahead/tuner.cpp.o"
  "CMakeFiles/kml_readahead.dir/readahead/tuner.cpp.o.d"
  "libkml_readahead.a"
  "libkml_readahead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kml_readahead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
