
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/readahead/features.cpp" "src/CMakeFiles/kml_readahead.dir/readahead/features.cpp.o" "gcc" "src/CMakeFiles/kml_readahead.dir/readahead/features.cpp.o.d"
  "/root/repo/src/readahead/file_tuner.cpp" "src/CMakeFiles/kml_readahead.dir/readahead/file_tuner.cpp.o" "gcc" "src/CMakeFiles/kml_readahead.dir/readahead/file_tuner.cpp.o.d"
  "/root/repo/src/readahead/model.cpp" "src/CMakeFiles/kml_readahead.dir/readahead/model.cpp.o" "gcc" "src/CMakeFiles/kml_readahead.dir/readahead/model.cpp.o.d"
  "/root/repo/src/readahead/pipeline.cpp" "src/CMakeFiles/kml_readahead.dir/readahead/pipeline.cpp.o" "gcc" "src/CMakeFiles/kml_readahead.dir/readahead/pipeline.cpp.o.d"
  "/root/repo/src/readahead/rl_tuner.cpp" "src/CMakeFiles/kml_readahead.dir/readahead/rl_tuner.cpp.o" "gcc" "src/CMakeFiles/kml_readahead.dir/readahead/rl_tuner.cpp.o.d"
  "/root/repo/src/readahead/tuner.cpp" "src/CMakeFiles/kml_readahead.dir/readahead/tuner.cpp.o" "gcc" "src/CMakeFiles/kml_readahead.dir/readahead/tuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/kml_runtime.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_workloads.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_nn.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_dtree.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_matrix.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_data.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_kv.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_math.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_portability.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
