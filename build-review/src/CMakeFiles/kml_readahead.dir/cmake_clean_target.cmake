file(REMOVE_RECURSE
  "libkml_readahead.a"
)
