# Empty dependencies file for kml_readahead.
# This may be replaced when dependencies are built.
