file(REMOVE_RECURSE
  "CMakeFiles/kml_workloads.dir/workloads/drivers.cpp.o"
  "CMakeFiles/kml_workloads.dir/workloads/drivers.cpp.o.d"
  "CMakeFiles/kml_workloads.dir/workloads/mixgraph.cpp.o"
  "CMakeFiles/kml_workloads.dir/workloads/mixgraph.cpp.o.d"
  "libkml_workloads.a"
  "libkml_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kml_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
