file(REMOVE_RECURSE
  "libkml_workloads.a"
)
