# Empty compiler generated dependencies file for kml_workloads.
# This may be replaced when dependencies are built.
