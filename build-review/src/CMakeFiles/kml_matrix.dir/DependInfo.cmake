
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/matrix/linalg.cpp" "src/CMakeFiles/kml_matrix.dir/matrix/linalg.cpp.o" "gcc" "src/CMakeFiles/kml_matrix.dir/matrix/linalg.cpp.o.d"
  "/root/repo/src/matrix/matrix.cpp" "src/CMakeFiles/kml_matrix.dir/matrix/matrix.cpp.o" "gcc" "src/CMakeFiles/kml_matrix.dir/matrix/matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/kml_math.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_portability.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
