file(REMOVE_RECURSE
  "libkml_matrix.a"
)
