file(REMOVE_RECURSE
  "CMakeFiles/kml_matrix.dir/matrix/linalg.cpp.o"
  "CMakeFiles/kml_matrix.dir/matrix/linalg.cpp.o.d"
  "CMakeFiles/kml_matrix.dir/matrix/matrix.cpp.o"
  "CMakeFiles/kml_matrix.dir/matrix/matrix.cpp.o.d"
  "libkml_matrix.a"
  "libkml_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kml_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
