# Empty compiler generated dependencies file for kml_matrix.
# This may be replaced when dependencies are built.
