file(REMOVE_RECURSE
  "libkml_capi.a"
)
