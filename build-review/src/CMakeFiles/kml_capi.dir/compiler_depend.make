# Empty compiler generated dependencies file for kml_capi.
# This may be replaced when dependencies are built.
