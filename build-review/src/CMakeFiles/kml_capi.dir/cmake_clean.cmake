file(REMOVE_RECURSE
  "CMakeFiles/kml_capi.dir/capi/kml_api.cpp.o"
  "CMakeFiles/kml_capi.dir/capi/kml_api.cpp.o.d"
  "libkml_capi.a"
  "libkml_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kml_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
