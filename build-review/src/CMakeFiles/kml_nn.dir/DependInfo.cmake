
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/CMakeFiles/kml_nn.dir/nn/activations.cpp.o" "gcc" "src/CMakeFiles/kml_nn.dir/nn/activations.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/CMakeFiles/kml_nn.dir/nn/layer.cpp.o" "gcc" "src/CMakeFiles/kml_nn.dir/nn/layer.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/CMakeFiles/kml_nn.dir/nn/linear.cpp.o" "gcc" "src/CMakeFiles/kml_nn.dir/nn/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/kml_nn.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/kml_nn.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/CMakeFiles/kml_nn.dir/nn/network.cpp.o" "gcc" "src/CMakeFiles/kml_nn.dir/nn/network.cpp.o.d"
  "/root/repo/src/nn/quantized.cpp" "src/CMakeFiles/kml_nn.dir/nn/quantized.cpp.o" "gcc" "src/CMakeFiles/kml_nn.dir/nn/quantized.cpp.o.d"
  "/root/repo/src/nn/recurrent.cpp" "src/CMakeFiles/kml_nn.dir/nn/recurrent.cpp.o" "gcc" "src/CMakeFiles/kml_nn.dir/nn/recurrent.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/CMakeFiles/kml_nn.dir/nn/serialize.cpp.o" "gcc" "src/CMakeFiles/kml_nn.dir/nn/serialize.cpp.o.d"
  "/root/repo/src/nn/sgd.cpp" "src/CMakeFiles/kml_nn.dir/nn/sgd.cpp.o" "gcc" "src/CMakeFiles/kml_nn.dir/nn/sgd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/kml_matrix.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_data.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_math.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_portability.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
