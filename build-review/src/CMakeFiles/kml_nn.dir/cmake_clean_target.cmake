file(REMOVE_RECURSE
  "libkml_nn.a"
)
