# Empty dependencies file for kml_nn.
# This may be replaced when dependencies are built.
