file(REMOVE_RECURSE
  "CMakeFiles/kml_nn.dir/nn/activations.cpp.o"
  "CMakeFiles/kml_nn.dir/nn/activations.cpp.o.d"
  "CMakeFiles/kml_nn.dir/nn/layer.cpp.o"
  "CMakeFiles/kml_nn.dir/nn/layer.cpp.o.d"
  "CMakeFiles/kml_nn.dir/nn/linear.cpp.o"
  "CMakeFiles/kml_nn.dir/nn/linear.cpp.o.d"
  "CMakeFiles/kml_nn.dir/nn/loss.cpp.o"
  "CMakeFiles/kml_nn.dir/nn/loss.cpp.o.d"
  "CMakeFiles/kml_nn.dir/nn/network.cpp.o"
  "CMakeFiles/kml_nn.dir/nn/network.cpp.o.d"
  "CMakeFiles/kml_nn.dir/nn/quantized.cpp.o"
  "CMakeFiles/kml_nn.dir/nn/quantized.cpp.o.d"
  "CMakeFiles/kml_nn.dir/nn/recurrent.cpp.o"
  "CMakeFiles/kml_nn.dir/nn/recurrent.cpp.o.d"
  "CMakeFiles/kml_nn.dir/nn/serialize.cpp.o"
  "CMakeFiles/kml_nn.dir/nn/serialize.cpp.o.d"
  "CMakeFiles/kml_nn.dir/nn/sgd.cpp.o"
  "CMakeFiles/kml_nn.dir/nn/sgd.cpp.o.d"
  "libkml_nn.a"
  "libkml_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kml_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
