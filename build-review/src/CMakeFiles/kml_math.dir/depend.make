# Empty dependencies file for kml_math.
# This may be replaced when dependencies are built.
