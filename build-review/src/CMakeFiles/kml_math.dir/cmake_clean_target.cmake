file(REMOVE_RECURSE
  "libkml_math.a"
)
