file(REMOVE_RECURSE
  "CMakeFiles/kml_math.dir/math/approx.cpp.o"
  "CMakeFiles/kml_math.dir/math/approx.cpp.o.d"
  "CMakeFiles/kml_math.dir/math/fixed.cpp.o"
  "CMakeFiles/kml_math.dir/math/fixed.cpp.o.d"
  "CMakeFiles/kml_math.dir/math/rng.cpp.o"
  "CMakeFiles/kml_math.dir/math/rng.cpp.o.d"
  "CMakeFiles/kml_math.dir/math/stats.cpp.o"
  "CMakeFiles/kml_math.dir/math/stats.cpp.o.d"
  "libkml_math.a"
  "libkml_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kml_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
