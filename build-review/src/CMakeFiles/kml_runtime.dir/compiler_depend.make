# Empty compiler generated dependencies file for kml_runtime.
# This may be replaced when dependencies are built.
