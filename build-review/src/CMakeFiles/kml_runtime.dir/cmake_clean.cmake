file(REMOVE_RECURSE
  "CMakeFiles/kml_runtime.dir/runtime/engine.cpp.o"
  "CMakeFiles/kml_runtime.dir/runtime/engine.cpp.o.d"
  "CMakeFiles/kml_runtime.dir/runtime/health.cpp.o"
  "CMakeFiles/kml_runtime.dir/runtime/health.cpp.o.d"
  "CMakeFiles/kml_runtime.dir/runtime/training_thread.cpp.o"
  "CMakeFiles/kml_runtime.dir/runtime/training_thread.cpp.o.d"
  "libkml_runtime.a"
  "libkml_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kml_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
