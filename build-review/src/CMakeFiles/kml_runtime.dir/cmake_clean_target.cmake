file(REMOVE_RECURSE
  "libkml_runtime.a"
)
