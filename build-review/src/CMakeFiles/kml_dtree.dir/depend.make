# Empty dependencies file for kml_dtree.
# This may be replaced when dependencies are built.
