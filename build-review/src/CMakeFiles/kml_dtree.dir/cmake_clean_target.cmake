file(REMOVE_RECURSE
  "libkml_dtree.a"
)
