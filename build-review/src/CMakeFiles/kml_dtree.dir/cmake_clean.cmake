file(REMOVE_RECURSE
  "CMakeFiles/kml_dtree.dir/dtree/decision_tree.cpp.o"
  "CMakeFiles/kml_dtree.dir/dtree/decision_tree.cpp.o.d"
  "libkml_dtree.a"
  "libkml_dtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kml_dtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
