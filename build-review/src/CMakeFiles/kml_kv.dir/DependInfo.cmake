
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kv/bloom.cpp" "src/CMakeFiles/kml_kv.dir/kv/bloom.cpp.o" "gcc" "src/CMakeFiles/kml_kv.dir/kv/bloom.cpp.o.d"
  "/root/repo/src/kv/iterator.cpp" "src/CMakeFiles/kml_kv.dir/kv/iterator.cpp.o" "gcc" "src/CMakeFiles/kml_kv.dir/kv/iterator.cpp.o.d"
  "/root/repo/src/kv/memtable.cpp" "src/CMakeFiles/kml_kv.dir/kv/memtable.cpp.o" "gcc" "src/CMakeFiles/kml_kv.dir/kv/memtable.cpp.o.d"
  "/root/repo/src/kv/minikv.cpp" "src/CMakeFiles/kml_kv.dir/kv/minikv.cpp.o" "gcc" "src/CMakeFiles/kml_kv.dir/kv/minikv.cpp.o.d"
  "/root/repo/src/kv/table.cpp" "src/CMakeFiles/kml_kv.dir/kv/table.cpp.o" "gcc" "src/CMakeFiles/kml_kv.dir/kv/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/kml_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_math.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/kml_portability.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
