file(REMOVE_RECURSE
  "CMakeFiles/kml_kv.dir/kv/bloom.cpp.o"
  "CMakeFiles/kml_kv.dir/kv/bloom.cpp.o.d"
  "CMakeFiles/kml_kv.dir/kv/iterator.cpp.o"
  "CMakeFiles/kml_kv.dir/kv/iterator.cpp.o.d"
  "CMakeFiles/kml_kv.dir/kv/memtable.cpp.o"
  "CMakeFiles/kml_kv.dir/kv/memtable.cpp.o.d"
  "CMakeFiles/kml_kv.dir/kv/minikv.cpp.o"
  "CMakeFiles/kml_kv.dir/kv/minikv.cpp.o.d"
  "CMakeFiles/kml_kv.dir/kv/table.cpp.o"
  "CMakeFiles/kml_kv.dir/kv/table.cpp.o.d"
  "libkml_kv.a"
  "libkml_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kml_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
