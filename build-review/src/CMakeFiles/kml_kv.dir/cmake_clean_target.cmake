file(REMOVE_RECURSE
  "libkml_kv.a"
)
