# Empty dependencies file for kml_kv.
# This may be replaced when dependencies are built.
