file(REMOVE_RECURSE
  "libkml_baselines.a"
)
