# Empty dependencies file for kml_baselines.
# This may be replaced when dependencies are built.
