file(REMOVE_RECURSE
  "CMakeFiles/kml_baselines.dir/baselines/markov.cpp.o"
  "CMakeFiles/kml_baselines.dir/baselines/markov.cpp.o.d"
  "libkml_baselines.a"
  "libkml_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kml_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
