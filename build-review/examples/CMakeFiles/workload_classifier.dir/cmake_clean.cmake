file(REMOVE_RECURSE
  "CMakeFiles/workload_classifier.dir/workload_classifier.cpp.o"
  "CMakeFiles/workload_classifier.dir/workload_classifier.cpp.o.d"
  "workload_classifier"
  "workload_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
