# Empty dependencies file for workload_classifier.
# This may be replaced when dependencies are built.
