# Empty compiler generated dependencies file for readahead_tuning.
# This may be replaced when dependencies are built.
