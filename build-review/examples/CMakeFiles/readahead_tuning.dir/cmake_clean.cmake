file(REMOVE_RECURSE
  "CMakeFiles/readahead_tuning.dir/readahead_tuning.cpp.o"
  "CMakeFiles/readahead_tuning.dir/readahead_tuning.cpp.o.d"
  "readahead_tuning"
  "readahead_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/readahead_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
