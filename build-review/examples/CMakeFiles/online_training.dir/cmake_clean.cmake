file(REMOVE_RECURSE
  "CMakeFiles/online_training.dir/online_training.cpp.o"
  "CMakeFiles/online_training.dir/online_training.cpp.o.d"
  "online_training"
  "online_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
