# Empty compiler generated dependencies file for online_training.
# This may be replaced when dependencies are built.
