# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/portability_test[1]_include.cmake")
include("/root/repo/build-review/tests/fault_test[1]_include.cmake")
include("/root/repo/build-review/tests/serialize_fuzz_test[1]_include.cmake")
include("/root/repo/build-review/tests/health_test[1]_include.cmake")
include("/root/repo/build-review/tests/math_test[1]_include.cmake")
include("/root/repo/build-review/tests/matrix_test[1]_include.cmake")
include("/root/repo/build-review/tests/nn_test[1]_include.cmake")
include("/root/repo/build-review/tests/data_test[1]_include.cmake")
include("/root/repo/build-review/tests/dtree_test[1]_include.cmake")
include("/root/repo/build-review/tests/sim_test[1]_include.cmake")
include("/root/repo/build-review/tests/kv_test[1]_include.cmake")
include("/root/repo/build-review/tests/workloads_test[1]_include.cmake")
include("/root/repo/build-review/tests/runtime_test[1]_include.cmake")
include("/root/repo/build-review/tests/readahead_test[1]_include.cmake")
include("/root/repo/build-review/tests/property_test[1]_include.cmake")
include("/root/repo/build-review/tests/quantized_test[1]_include.cmake")
include("/root/repo/build-review/tests/recurrent_test[1]_include.cmake")
include("/root/repo/build-review/tests/rl_tuner_test[1]_include.cmake")
include("/root/repo/build-review/tests/baselines_test[1]_include.cmake")
include("/root/repo/build-review/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build-review/tests/capi_test[1]_include.cmake")
include("/root/repo/build-review/tests/file_tuner_test[1]_include.cmake")
include("/root/repo/build-review/tests/kv_fuzz_test[1]_include.cmake")
include("/root/repo/build-review/tests/integration_test[1]_include.cmake")
include("/root/repo/build-review/tests/writeback_test[1]_include.cmake")
