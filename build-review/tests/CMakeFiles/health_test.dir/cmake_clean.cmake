file(REMOVE_RECURSE
  "CMakeFiles/health_test.dir/health_test.cpp.o"
  "CMakeFiles/health_test.dir/health_test.cpp.o.d"
  "health_test"
  "health_test.pdb"
  "health_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/health_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
