# Empty compiler generated dependencies file for rl_tuner_test.
# This may be replaced when dependencies are built.
