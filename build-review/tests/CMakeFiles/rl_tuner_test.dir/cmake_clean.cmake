file(REMOVE_RECURSE
  "CMakeFiles/rl_tuner_test.dir/rl_tuner_test.cpp.o"
  "CMakeFiles/rl_tuner_test.dir/rl_tuner_test.cpp.o.d"
  "rl_tuner_test"
  "rl_tuner_test.pdb"
  "rl_tuner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_tuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
