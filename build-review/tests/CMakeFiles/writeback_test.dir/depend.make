# Empty dependencies file for writeback_test.
# This may be replaced when dependencies are built.
