# Empty compiler generated dependencies file for writeback_test.
# This may be replaced when dependencies are built.
