file(REMOVE_RECURSE
  "CMakeFiles/writeback_test.dir/writeback_test.cpp.o"
  "CMakeFiles/writeback_test.dir/writeback_test.cpp.o.d"
  "writeback_test"
  "writeback_test.pdb"
  "writeback_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/writeback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
