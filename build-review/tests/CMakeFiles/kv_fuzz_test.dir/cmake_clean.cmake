file(REMOVE_RECURSE
  "CMakeFiles/kv_fuzz_test.dir/kv_fuzz_test.cpp.o"
  "CMakeFiles/kv_fuzz_test.dir/kv_fuzz_test.cpp.o.d"
  "kv_fuzz_test"
  "kv_fuzz_test.pdb"
  "kv_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
