# Empty dependencies file for kv_fuzz_test.
# This may be replaced when dependencies are built.
