file(REMOVE_RECURSE
  "CMakeFiles/quantized_test.dir/quantized_test.cpp.o"
  "CMakeFiles/quantized_test.dir/quantized_test.cpp.o.d"
  "quantized_test"
  "quantized_test.pdb"
  "quantized_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
