# Empty dependencies file for quantized_test.
# This may be replaced when dependencies are built.
