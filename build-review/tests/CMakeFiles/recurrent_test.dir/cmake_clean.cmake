file(REMOVE_RECURSE
  "CMakeFiles/recurrent_test.dir/recurrent_test.cpp.o"
  "CMakeFiles/recurrent_test.dir/recurrent_test.cpp.o.d"
  "recurrent_test"
  "recurrent_test.pdb"
  "recurrent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recurrent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
