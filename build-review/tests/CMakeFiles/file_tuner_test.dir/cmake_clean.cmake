file(REMOVE_RECURSE
  "CMakeFiles/file_tuner_test.dir/file_tuner_test.cpp.o"
  "CMakeFiles/file_tuner_test.dir/file_tuner_test.cpp.o.d"
  "file_tuner_test"
  "file_tuner_test.pdb"
  "file_tuner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_tuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
