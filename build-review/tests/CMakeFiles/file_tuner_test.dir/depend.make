# Empty dependencies file for file_tuner_test.
# This may be replaced when dependencies are built.
