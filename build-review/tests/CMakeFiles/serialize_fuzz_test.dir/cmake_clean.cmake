file(REMOVE_RECURSE
  "CMakeFiles/serialize_fuzz_test.dir/serialize_fuzz_test.cpp.o"
  "CMakeFiles/serialize_fuzz_test.dir/serialize_fuzz_test.cpp.o.d"
  "serialize_fuzz_test"
  "serialize_fuzz_test.pdb"
  "serialize_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serialize_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
