file(REMOVE_RECURSE
  "CMakeFiles/readahead_test.dir/readahead_test.cpp.o"
  "CMakeFiles/readahead_test.dir/readahead_test.cpp.o.d"
  "readahead_test"
  "readahead_test.pdb"
  "readahead_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/readahead_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
