# Empty dependencies file for readahead_test.
# This may be replaced when dependencies are built.
